//! # culzss-server — a multi-tenant compression service over CULZSS
//!
//! The paper positions CULZSS as infrastructure that lets systems
//! "compress the data before sending over the network" without
//! monopolizing the host CPUs (§I, §VII). This crate builds that
//! deployment shape: a long-running service accepting compression and
//! decompression jobs from many tenants, multiplexed over a pool of
//! simulated GPU devices plus CPU fallback workers.
//!
//! The moving parts:
//!
//! - **Admission control & backpressure** — a bounded priority queue
//!   with per-tenant token-bucket rate limits (borrowable burst
//!   permits); a full queue refuses immediately with a typed
//!   [`SubmitError`] (never blocks, never silently drops).
//! - **Scheduling** — per-device shards with deficit-round-robin
//!   weighted-fair dequeue across tenants inside each priority band;
//!   idle devices steal from the deepest healthy peer's shard; batches
//!   coalesce same-kind jobs and report sequential vs. pipelined
//!   makespan ([`BatchReport`], built on
//!   `culzss::stream::BatchTimeline`).
//! - **Graceful degradation** — simulated device failures (injected via
//!   [`FaultPlan`] or real launch errors) consume a bounded retry budget
//!   and reroute onto another healthy GPU first, degrading to the
//!   wire-compatible CPU path (`culzss::hetero`) only when no healthy
//!   device remains.
//! - **Failure domains** — per-device circuit breakers
//!   (closed → open → half-open, [`health`]), deterministic jittered
//!   retry backoff, a watchdog that converts hangs into typed
//!   [`JobError::DeviceTimeout`] failures, and brownout load-shedding
//!   ([`SubmitError::Degraded`]) when every breaker is open and the
//!   queue saturates. Seeded per-device chaos schedules
//!   ([`FaultPlan::chaos`]) drive the simulator's own fault seam for
//!   replayable chaos tests.
//! - **End-to-end integrity** — every compressed output is proven by a
//!   host decompress-and-compare before its ticket resolves
//!   ([`ServerConfig::verify_outputs`]); [`FaultPlan`] can inject
//!   payload corruption (bit flips, tail truncation, chunk-table
//!   tampering) between compression and verification. Detected
//!   corruption consumes the retry budget and then quarantines the job
//!   ([`JobError::Quarantined`]) — corrupted bytes are never returned —
//!   with global and per-tenant `integrity_failures` counters.
//! - **Lifecycle** — per-job deadlines, and a [`Service::shutdown`]
//!   that drains every admitted job before the workers exit, leaving a
//!   [`ServiceStats`] snapshot whose counters reconcile.
//! - **Load** — a closed-loop multi-tenant generator ([`loadgen`])
//!   driving mixed traffic from the `culzss-datasets` corpora.
//! - **Tracing** — always-on span recording from admission to delivery,
//!   merged with the modelled per-SM GPU timelines into one Chrome-trace
//!   export ([`tracing`], [`Service::trace_chrome_json`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod fault;
pub mod health;
pub mod job;
pub mod loadgen;
mod queue;
pub mod service;
pub mod stats;
pub mod tracing;
mod worker;

pub use batch::BatchReport;
pub use fault::FaultPlan;
pub use health::{BreakerState, BreakerTransition, DeviceHealthSnapshot, HealthConfig};
pub use job::{
    EngineKind, JobError, JobId, JobKind, JobOutcome, JobResult, JobSpec, JobTicket, Priority,
    SubmitError,
};
pub use loadgen::{LoadGenConfig, LoadProfile, LoadReport};
pub use service::{ServerConfig, Service};
pub use stats::{HistogramSnapshot, ServiceStats};
pub use tracing::{chrome_trace, validate_chrome_trace, SpanRecord};
