//! The service object: configuration, lifecycle, and the submission
//! front door.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use culzss::{Culzss, CulzssParams};
use culzss_dedup::{ChunkCache, DedupCompressor};
use culzss_gpusim::DeviceSpec;

use crate::batch::BatchReport;
use crate::fault::FaultPlan;
use crate::health::{BreakerTransition, DeviceHealthSnapshot, HealthConfig, HealthRegistry};
use crate::job::{Job, JobId, JobSpec, JobTicket, SubmitError};
use crate::queue::{AdmissionQueue, QosConfig};
use crate::stats::{ServiceStats, StatsCollector};
use crate::tracing::{SpanRecord, TraceRecorder};
use crate::worker::{self, WorkerEngine};

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulated GPU devices; one worker thread drives each.
    pub devices: Vec<DeviceSpec>,
    /// Host threads each device simulation uses to execute blocks.
    pub gpu_sim_threads: usize,
    /// Dedicated CPU workers (the hetero path). With zero, GPU workers
    /// degrade to running fallback-lane jobs on the host themselves.
    pub cpu_workers: usize,
    /// Host threads each CPU worker (or inline fallback) uses.
    pub cpu_threads: usize,
    /// Compression parameters. V1 keeps the CPU fallback byte-identical
    /// to the device path; V2 falls back to a valid (wire-compatible)
    /// stream with V2 window/match settings.
    pub params: CulzssParams,
    /// Global queue bound; submissions beyond it are refused with
    /// [`SubmitError::Overloaded`].
    pub queue_depth: usize,
    /// Per-tenant token-bucket refill rate in payload bytes per second
    /// ([`SubmitError::TenantOverLimit`] once exhausted). `None` (the
    /// default) disables tenant rate limiting.
    pub tenant_rate_bytes: Option<u64>,
    /// Token-bucket burst capacity in payload bytes: how much a tenant
    /// can submit instantaneously from a full bucket. A tenant may
    /// additionally *borrow* up to one more burst against future refill,
    /// so short spikes ride through while sustained overrun is refused.
    pub tenant_burst_bytes: usize,
    /// Deficit round-robin quantum in payload bytes: service granted per
    /// tenant per rotation turn within a priority band. Smaller values
    /// interleave tenants more finely; larger values favor batch
    /// locality.
    pub fair_quantum_bytes: usize,
    /// Max jobs coalesced into one batch window.
    pub batch_jobs: usize,
    /// Max payload bytes coalesced into one batch window.
    pub batch_bytes: usize,
    /// Device-failure retries per job before it fails.
    pub max_retries: u32,
    /// Deadline applied to jobs that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Deterministic fault injection — device failures and payload
    /// corruption (degradation testing).
    pub fault: FaultPlan,
    /// Verify every compressed output by decompressing it on the host
    /// and comparing with the input before resolving the ticket. A
    /// failed check consumes the retry budget; exhausting it resolves
    /// the job as [`crate::JobError::Quarantined`] rather than ever
    /// returning corrupted bytes. On by default.
    pub verify_outputs: bool,
    /// Byte budget for the content-addressed chunk cache fronting the
    /// compression path ([`culzss_dedup`]). `Some(bytes)` makes every
    /// worker chunk compress payloads content-defined, serve repeated
    /// segments from cache, and recompress only what changed — the
    /// output stays byte-identical to a cache-off run. `None` (the
    /// default) disables the dedup front end.
    pub cache: Option<usize>,
    /// Failure-domain tunables: per-device circuit breakers, retry
    /// backoff, the execution watchdog, and the brownout threshold.
    pub health: HealthConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            devices: vec![DeviceSpec::gtx480()],
            gpu_sim_threads: 2,
            cpu_workers: 1,
            cpu_threads: 2,
            params: CulzssParams::v1(),
            queue_depth: 128,
            tenant_rate_bytes: None,
            tenant_burst_bytes: 8 << 20,
            fair_quantum_bytes: 64 << 10,
            batch_jobs: 8,
            batch_bytes: 8 << 20,
            max_retries: 1,
            default_deadline: None,
            fault: FaultPlan::none(),
            verify_outputs: true,
            cache: None,
            health: HealthConfig::default(),
        }
    }
}

/// State shared between the front door and the worker threads.
pub(crate) struct Shared {
    pub queue: AdmissionQueue,
    pub stats: StatsCollector,
    pub trace: TraceRecorder,
    pub fault: FaultPlan,
    pub health: Arc<HealthRegistry>,
    pub params: CulzssParams,
    pub cpu_threads: usize,
    pub max_retries: u32,
    pub verify_outputs: bool,
    pub batch_jobs: usize,
    pub batch_bytes: usize,
    /// The dedup front end all compress workers share, when enabled.
    pub dedup: Option<DedupCompressor>,
    batch_seq: AtomicU64,
    job_seq: AtomicU64,
    default_deadline: Option<Duration>,
    /// Queue depth at or above which an all-breakers-open service sheds
    /// new submissions ([`SubmitError::Degraded`]).
    brownout_depth: usize,
}

impl Shared {
    pub fn next_batch_id(&self) -> u64 {
        self.batch_seq.fetch_add(1, Relaxed)
    }

    /// Records a breaker transition in the trace's health lane (the
    /// registry already logged it for replay assertions).
    pub fn note_breaker(&self, transition: Option<BreakerTransition>) {
        if let Some(t) = transition {
            self.trace.breaker_transition(&t);
        }
    }

    /// The counter snapshot, with the chunk cache's own counters and the
    /// per-device health registry folded in (cache and breakers track
    /// their state internally; the collector's atomics cover everything
    /// else).
    pub fn stats_snapshot(&self) -> ServiceStats {
        let mut snap = self.stats.snapshot();
        if let Some(dedup) = &self.dedup {
            let cache = dedup.cache().stats();
            snap.cache_hits = cache.hits;
            snap.cache_misses = cache.misses;
            snap.cache_bytes_saved = cache.bytes_saved;
            snap.cache_evictions = cache.evictions;
        }
        snap.device_health = self.health.snapshots();
        snap.breaker_transitions = self.health.transitions();
        for h in &snap.device_health {
            snap.breaker_opens += h.opens;
            snap.breaker_half_opens += h.half_opens;
            snap.breaker_closes += h.closes;
        }
        let (admitted, released, outstanding) = self.queue.quota_ledger();
        snap.quota_admitted = admitted;
        snap.quota_released = released;
        snap.quota_outstanding = outstanding as u64;
        snap
    }
}

/// A running multi-tenant compression service: a worker pool over
/// simulated GPU devices plus CPU fallback workers, fed by a bounded
/// priority queue.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts the worker pool described by `config`.
    pub fn start(config: ServerConfig) -> Self {
        let has_cpu_workers = config.cpu_workers > 0;
        let brownout_depth = ((config.queue_depth.max(1) as f64
            * config.health.brownout_fraction.clamp(0.0, 1.0))
        .ceil() as usize)
            .max(1);
        let health = Arc::new(HealthRegistry::new(config.health.clone(), config.devices.len()));
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(
                config.queue_depth,
                QosConfig {
                    rate_bytes_per_sec: config.tenant_rate_bytes.map(|r| r as f64),
                    burst_bytes: config.tenant_burst_bytes.max(1) as f64,
                    borrow_bytes: config.tenant_burst_bytes.max(1) as f64,
                    quantum_bytes: (config.fair_quantum_bytes.max(1)) as u64,
                },
                config.devices.len(),
                has_cpu_workers,
                Arc::clone(&health),
            ),
            stats: StatsCollector::new(),
            trace: TraceRecorder::new(),
            health,
            fault: config.fault,
            params: config.params.clone(),
            cpu_threads: config.cpu_threads.max(1),
            max_retries: config.max_retries,
            verify_outputs: config.verify_outputs,
            batch_jobs: config.batch_jobs.max(1),
            batch_bytes: config.batch_bytes.max(1),
            dedup: config.cache.map(|bytes| {
                DedupCompressor::new(Arc::new(ChunkCache::new(bytes)), config.params.clone())
            }),
            batch_seq: AtomicU64::new(0),
            job_seq: AtomicU64::new(0),
            default_deadline: config.default_deadline,
            brownout_depth,
        });

        // Startup racecheck probe: run the configured kernel over a small
        // deterministic corpus sample on each device under the sanitizer
        // ([`culzss_gpusim::GpuSim::launch_checked`]), so [`ServiceStats`]
        // can assert the service executes race- and divergence-free
        // before any tenant traffic is admitted.
        let probe =
            culzss_datasets::Dataset::CFiles.generate(4 * config.params.chunk_size.max(1), 11);
        for spec in &config.devices {
            let sim = culzss_gpusim::GpuSim::new(spec.clone())
                .with_workers(config.gpu_sim_threads.max(1));
            if let Ok(check) = culzss::sancheck::check(&sim, &probe, &config.params) {
                shared.stats.on_sancheck(&check.report);
            }
        }

        let mut workers = Vec::new();
        for (device, spec) in config.devices.iter().enumerate() {
            let mut culzss = Culzss::with_device(spec.clone(), config.params.clone())
                .with_workers(config.gpu_sim_threads.max(1));
            // Chaos schedule: install this device's fault model so its
            // kernel launches fail/slow/hang per the seeded plan.
            if let Some(model) = shared.fault.device_model(device) {
                culzss = culzss.with_fault_model(model);
            }
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("culzss-gpu{device}"))
                .spawn(move || {
                    worker::run(&shared, WorkerEngine::Gpu { culzss: Box::new(culzss), device })
                })
                .expect("spawn GPU worker");
            workers.push(handle);
        }
        for index in 0..config.cpu_workers {
            let threads = config.cpu_threads.max(1);
            let shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("culzss-cpu{index}"))
                .spawn(move || worker::run(&shared, WorkerEngine::Cpu { threads }))
                .expect("spawn CPU worker");
            workers.push(handle);
        }

        Service { shared, workers }
    }

    /// Submits a job through admission control; returns a ticket to
    /// await the result, or a typed refusal — never blocks.
    pub fn submit(&self, spec: JobSpec) -> Result<JobTicket, SubmitError> {
        self.shared.stats.on_received();
        // Brownout load-shedding: with every device breaker open, the
        // CPU lane is the only engine left. Once the queue backs up past
        // the brownout threshold, admitting more work only grows a
        // backlog it cannot drain in time — shed with a typed refusal
        // instead.
        if self.shared.health.all_open() && self.shared.queue.depth() >= self.shared.brownout_depth
        {
            let e = SubmitError::Degraded {
                open_devices: self.shared.health.device_count(),
                depth: self.shared.queue.depth(),
            };
            self.shared.stats.on_rejected(&e);
            return Err(e);
        }
        let id = JobId(self.shared.job_seq.fetch_add(1, Relaxed));
        let accepted_at = Instant::now();
        let deadline = spec.deadline.or(self.shared.default_deadline).map(|d| accepted_at + d);
        let (tx, rx) = mpsc::channel();
        let tenant = spec.tenant.clone();
        let job = Job {
            id,
            tenant: spec.tenant,
            kind: spec.kind,
            payload: spec.payload,
            priority: spec.priority,
            accepted_at,
            deadline,
            attempts: 0,
            force_cpu: false,
            not_before: None,
            avoid_devices: 0,
            responder: tx,
        };
        match self.shared.queue.submit(job) {
            Ok(admitted) => {
                self.shared.stats.on_accepted(admitted.depth);
                if admitted.borrowed > 0 {
                    self.shared.stats.on_borrowed(admitted.borrowed);
                    self.shared.trace.qos_event(
                        &format!("borrow:{tenant}"),
                        admitted.shard,
                        &[
                            ("tenant", tenant.clone()),
                            ("borrowed_bytes", admitted.borrowed.to_string()),
                        ],
                    );
                }
                Ok(JobTicket { id, rx })
            }
            Err(e) => {
                self.shared.stats.on_rejected(&e);
                Err(e)
            }
        }
    }

    /// The compression parameters the service runs with.
    pub fn params(&self) -> &CulzssParams {
        &self.shared.params
    }

    /// Jobs currently queued (not yet handed to a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// `tenant`'s admitted-but-unresolved job count.
    pub fn tenant_in_flight(&self, tenant: &str) -> usize {
        self.shared.queue.tenant_in_flight(tenant)
    }

    /// A point-in-time counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats_snapshot()
    }

    /// Current per-device health (breaker state and counters).
    pub fn device_health(&self) -> Vec<DeviceHealthSnapshot> {
        self.shared.health.snapshots()
    }

    /// Every breaker state change so far, globally ordered. Two runs of
    /// the same seeded chaos schedule produce the same sequence — the
    /// deterministic-replay contract the chaos suite asserts.
    pub fn breaker_transitions(&self) -> Vec<BreakerTransition> {
        self.shared.health.transitions()
    }

    /// The most recent coalesced batch windows (bounded ring).
    pub fn recent_batches(&self) -> Vec<BatchReport> {
        self.shared.stats.recent_batches()
    }

    /// Every span recorded since the service started (µs timestamps
    /// relative to the service epoch).
    pub fn trace_spans(&self) -> Vec<SpanRecord> {
        self.shared.trace.spans()
    }

    /// The recorded spans — request lifecycle plus modelled GPU block
    /// spans — as one Chrome tracing JSON document (load in Perfetto or
    /// `chrome://tracing`).
    pub fn trace_chrome_json(&self) -> String {
        self.shared.trace.chrome_json()
    }

    /// Spans discarded because the bounded trace buffer was full.
    pub fn trace_dropped(&self) -> u64 {
        self.shared.trace.dropped()
    }

    /// Graceful shutdown: stops admitting, drains every queued and
    /// in-flight job (their tickets resolve normally), joins the
    /// workers, and returns the final — reconciling — stats snapshot.
    pub fn shutdown(self) -> ServiceStats {
        let shared = Arc::clone(&self.shared);
        drop(self); // Drop drains and joins.
        shared.stats_snapshot()
    }

    /// [`Self::shutdown`], additionally returning the complete Chrome
    /// trace. Exporting after the drain guarantees every span — including
    /// the batch windows closing out during shutdown — is present.
    pub fn shutdown_with_trace(self) -> (ServiceStats, String) {
        let shared = Arc::clone(&self.shared);
        drop(self); // Drop drains and joins.
        (shared.stats_snapshot(), shared.trace.chrome_json())
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shared.queue.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}
