//! Structured request tracing: spans from admission to delivery, merged
//! with the modelled GPU timelines into one Chrome-trace export.
//!
//! Every job leaves a trail of spans on its own lane (`pid` 1, `tid` =
//! job id): a `request` span covering admission → resolution, nesting
//! `queue_wait` (admission → batch dequeue), `execute` (worker time,
//! itself nesting the modelled `h2d`/`kernel`/`d2h`/`cpu` stages on the
//! GPU path), and `verify` (the roundtrip gate). Batch windows get one
//! span per batch on `pid` 2 (`tid` = batch id), and each kernel launch
//! contributes its per-SM block spans on `pid` 10 + device (`tid` = SM),
//! anchored at the wall-clock instant its `kernel` stage span starts —
//! so one trace shows a request descending from the queue, through a
//! worker, onto the simulated SMs.
//!
//! Recording is cheap (one mutex push per span, bounded buffer) and
//! always on; export happens on demand via
//! [`crate::Service::trace_chrome_json`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use culzss_gpusim::trace::{write_chrome_trace, ChromeEvent, Timeline};
use parking_lot::Mutex;

/// Process lane of per-job host spans (`tid` = job id).
pub const SERVICE_PID: u64 = 1;
/// Process lane of batch-window spans (`tid` = batch id).
pub const BATCH_PID: u64 = 2;
/// Process lane of device-health events (`tid` = device index):
/// zero-duration spans marking circuit-breaker transitions.
pub const HEALTH_PID: u64 = 3;
/// Process lane of QoS events (`tid` = shard/device index):
/// zero-duration spans marking work-steal windows and token-bucket
/// permit borrows.
pub const QOS_PID: u64 = 4;
/// Device `d`'s modelled block spans live on `DEVICE_PID_BASE + d`.
pub const DEVICE_PID_BASE: u64 = 10;

/// Span-buffer bound: recording stops (and counts drops) beyond this,
/// so tracing can stay always-on without unbounded memory.
const SPAN_CAP: usize = 65_536;

/// One recorded span, timestamped in microseconds since the recorder's
/// epoch (the service start).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (`request`, `queue_wait`, `execute`, …).
    pub name: String,
    /// Category: `host` (wall clock), `modelled` (cost-model time), or
    /// the block span categories from [`Timeline::block_events`].
    pub cat: String,
    /// Process lane.
    pub pid: u64,
    /// Thread lane within the process.
    pub tid: u64,
    /// Start, µs since the service epoch.
    pub start_us: f64,
    /// Duration in µs.
    pub dur_us: f64,
    /// Labels (tenant, kind, engine, …).
    pub args: Vec<(String, String)>,
}

impl SpanRecord {
    /// End timestamp (µs since epoch).
    pub fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

/// The always-on span sink owned by a running service.
#[derive(Debug)]
pub(crate) struct TraceRecorder {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
}

impl TraceRecorder {
    pub fn new() -> Self {
        Self { epoch: Instant::now(), spans: Mutex::new(Vec::new()), dropped: AtomicU64::new(0) }
    }

    /// `t` as µs since the service epoch (0 for pre-epoch instants).
    pub fn instant_us(&self, t: Instant) -> f64 {
        t.saturating_duration_since(self.epoch).as_secs_f64() * 1e6
    }

    pub fn record(&self, span: SpanRecord) {
        let mut spans = self.spans.lock();
        if spans.len() >= SPAN_CAP {
            self.dropped.fetch_add(1, Relaxed);
            return;
        }
        spans.push(span);
    }

    /// Records a wall-clock span on a host lane.
    pub fn host_span(
        &self,
        name: &str,
        pid: u64,
        tid: u64,
        start: Instant,
        end: Instant,
        args: Vec<(String, String)>,
    ) {
        let start_us = self.instant_us(start);
        let end_us = self.instant_us(end).max(start_us);
        // `end_us()` recomputes start + dur, and that double rounding
        // can land one ulp off the timestamp measured here — spans that
        // share an end instant (batch-mates' queue_wait ends at one
        // dequeue) must reproduce it exactly, so nudge the duration
        // until the sum round-trips. A representable duration always
        // exists because ulp(dur) ≤ ulp(end) for dur ≤ end.
        let mut dur_us = end_us - start_us;
        while start_us + dur_us < end_us {
            dur_us = dur_us.next_up();
        }
        while start_us + dur_us > end_us {
            dur_us = dur_us.next_down();
        }
        self.record(SpanRecord {
            name: name.into(),
            cat: "host".into(),
            pid,
            tid,
            start_us,
            dur_us,
            args,
        });
    }

    /// Records a cost-model stage span (`h2d`/`kernel`/`d2h`/`cpu`) on a
    /// job lane, anchored at wall-clock offset `start_us`.
    pub fn modelled_span(&self, name: &str, tid: u64, start_us: f64, dur_seconds: f64) {
        self.record(SpanRecord {
            name: name.into(),
            cat: "modelled".into(),
            pid: SERVICE_PID,
            tid,
            start_us,
            dur_us: (dur_seconds * 1e6).max(0.0),
            args: Vec::new(),
        });
    }

    /// Records a launch's modelled per-SM block spans on `device`'s
    /// lane, anchored at wall-clock offset `offset_us` (the start of the
    /// corresponding `kernel` stage span).
    pub fn block_spans(&self, device: usize, timeline: &Timeline, kernel: &str, offset_us: f64) {
        for event in timeline.block_events(kernel, DEVICE_PID_BASE + device as u64, offset_us) {
            self.record(SpanRecord {
                name: event.name,
                cat: event.cat,
                pid: event.pid,
                tid: event.tid,
                start_us: event.ts_us,
                dur_us: event.dur_us.unwrap_or(0.0),
                args: Vec::new(),
            });
        }
    }

    /// Records a circuit-breaker transition as a zero-duration span on
    /// the health lane (`tid` = device), labelled with the states.
    pub fn breaker_transition(&self, t: &crate::health::BreakerTransition) {
        let now_us = self.instant_us(Instant::now());
        self.record(SpanRecord {
            name: format!("breaker:{}->{}", t.from, t.to),
            cat: "host".into(),
            pid: HEALTH_PID,
            tid: t.device as u64,
            start_us: now_us,
            dur_us: 0.0,
            args: vec![
                ("seq".into(), t.seq.to_string()),
                ("device".into(), t.device.to_string()),
                ("from".into(), t.from.to_string()),
                ("to".into(), t.to.to_string()),
            ],
        });
    }

    /// Records a QoS event (work-steal window, permit borrow) as a
    /// zero-duration span on the QoS lane (`tid` = shard index).
    pub fn qos_event(&self, name: &str, shard: usize, args: &[(&str, String)]) {
        let now_us = self.instant_us(Instant::now());
        self.record(SpanRecord {
            name: name.to_string(),
            cat: "host".into(),
            pid: QOS_PID,
            tid: shard as u64,
            start_us: now_us,
            dur_us: 0.0,
            args: args.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
        });
    }

    /// A copy of every span recorded so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().clone()
    }

    /// Spans discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// The full trace as Chrome tracing JSON.
    pub fn chrome_json(&self) -> String {
        chrome_trace(&self.spans())
    }
}

/// Serializes `spans` as Chrome tracing JSON: host lanes become nested
/// `B`/`E` duration events (children clamped into their parents, lane
/// timestamps monotonic), device lanes become `X` complete events, plus
/// `M` metadata naming the process lanes.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut lanes: BTreeMap<(u64, u64), Vec<&SpanRecord>> = BTreeMap::new();
    for span in spans {
        lanes.entry((span.pid, span.tid)).or_default().push(span);
    }

    let mut events = Vec::new();
    let mut named_pids = std::collections::BTreeSet::new();
    for &(pid, _) in lanes.keys() {
        if !named_pids.insert(pid) {
            continue;
        }
        let name = match pid {
            SERVICE_PID => "culzss-service (jobs)".to_string(),
            BATCH_PID => "culzss-service (batches)".to_string(),
            HEALTH_PID => "culzss-service (device health)".to_string(),
            QOS_PID => "culzss-service (qos)".to_string(),
            p if p >= DEVICE_PID_BASE => format!("gpu{} (modelled SMs)", p - DEVICE_PID_BASE),
            p => format!("pid {p}"),
        };
        events.push(ChromeEvent::process_name(pid, &name));
    }

    for ((pid, tid), mut lane) in lanes {
        if pid >= DEVICE_PID_BASE {
            // Modelled block spans: complete events, no nesting needed.
            lane.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
            for span in lane {
                events.push(ChromeEvent {
                    name: span.name.clone(),
                    cat: span.cat.clone(),
                    ph: 'X',
                    ts_us: span.start_us,
                    dur_us: Some(span.dur_us),
                    pid,
                    tid,
                    args: span.args.clone(),
                });
            }
            continue;
        }
        // Host lanes: sort so parents (earlier start, later end) precede
        // children, then emit a balanced B/E stream, clamping children
        // into their parents and keeping timestamps monotonic.
        lane.sort_by(|a, b| {
            a.start_us.total_cmp(&b.start_us).then(b.end_us().total_cmp(&a.end_us()))
        });
        let mut stack: Vec<(String, f64)> = Vec::new();
        let mut cursor = 0.0f64;
        let mut emit = |ph: char, name: &str, ts: f64, args: Vec<(String, String)>| {
            events.push(ChromeEvent {
                name: name.into(),
                cat: "host".into(),
                ph,
                ts_us: ts,
                dur_us: None,
                pid,
                tid,
                args,
            });
        };
        for span in lane {
            while let Some((name, end)) = stack.last().cloned() {
                if end <= span.start_us {
                    let ts = end.max(cursor);
                    emit('E', &name, ts, Vec::new());
                    cursor = ts;
                    stack.pop();
                } else {
                    break;
                }
            }
            let start = span.start_us.max(cursor);
            // A child cannot outlive its parent in the nesting model.
            let end = match stack.last() {
                Some((_, parent_end)) => span.end_us().min(*parent_end),
                None => span.end_us(),
            }
            .max(start);
            emit('B', &span.name, start, span.args.clone());
            cursor = start;
            stack.push((span.name.clone(), end));
        }
        while let Some((name, end)) = stack.pop() {
            let ts = end.max(cursor);
            emit('E', &name, ts, Vec::new());
            cursor = ts;
        }
    }

    write_chrome_trace(&events)
}

/// Schema check for an emitted trace: every lane's `B`/`E` events must
/// balance (LIFO, matching names) with monotonically non-decreasing
/// timestamps, and `X` events must carry non-negative durations.
/// Tailored to [`write_chrome_trace`]'s output (name field first,
/// strings fully escaped).
pub fn validate_chrome_trace(json: &str) -> Result<(), String> {
    let objects = split_events(json)?;
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for (i, obj) in objects.iter().enumerate() {
        let ph = field_string(obj, "ph").ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        let ts = field_number(obj, "ts").ok_or_else(|| format!("event {i}: missing ts"))?;
        let pid = field_number(obj, "pid").ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = field_number(obj, "tid").ok_or_else(|| format!("event {i}: missing tid"))?;
        let name = field_string(obj, "name").ok_or_else(|| format!("event {i}: missing name"))?;
        let lane = (pid as u64, tid as u64);
        match ph.as_str() {
            "B" | "E" => {
                let last = last_ts.entry(lane).or_insert(f64::NEG_INFINITY);
                if ts < *last {
                    return Err(format!(
                        "event {i} ({name}): timestamp {ts} regressed below {last} on lane {lane:?}"
                    ));
                }
                *last = ts;
                let stack = stacks.entry(lane).or_default();
                if ph == "B" {
                    stack.push(name);
                } else {
                    match stack.pop() {
                        Some(open) if open == name => {}
                        Some(open) => {
                            return Err(format!(
                                "event {i}: E \"{name}\" closes B \"{open}\" on lane {lane:?}"
                            ));
                        }
                        None => {
                            return Err(format!(
                                "event {i}: E \"{name}\" without an open B on lane {lane:?}"
                            ));
                        }
                    }
                }
            }
            "X" => {
                let dur =
                    field_number(obj, "dur").ok_or_else(|| format!("event {i}: X missing dur"))?;
                if dur < 0.0 {
                    return Err(format!("event {i} ({name}): negative duration {dur}"));
                }
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    for (lane, stack) in stacks {
        if let Some(open) = stack.last() {
            return Err(format!("lane {lane:?}: unclosed B \"{open}\""));
        }
    }
    Ok(())
}

/// Splits a JSON array of objects into the objects' raw text, tracking
/// quote/escape state so braces inside strings don't confuse the scan.
fn split_events(json: &str) -> Result<Vec<&str>, String> {
    let body = json.trim();
    if !body.starts_with('[') || !body.ends_with(']') {
        return Err("trace is not a JSON array".into());
    }
    let mut events = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.checked_sub(1).ok_or("unbalanced braces")?;
                if depth == 0 {
                    let s = start.take().ok_or("object end without start")?;
                    events.push(&body[s..=i]);
                }
            }
            _ => {}
        }
    }
    if depth != 0 || in_string {
        return Err("truncated trace JSON".into());
    }
    Ok(events)
}

/// First occurrence of string field `key` in `obj` (raw, still escaped —
/// adequate for comparing identically-escaped names).
fn field_string(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = obj.find(&pat)? + pat.len();
    let rest = &obj[at..];
    let mut out = String::new();
    let mut escaped = false;
    for c in rest.chars() {
        if escaped {
            out.push(c);
            escaped = false;
        } else if c == '\\' {
            out.push(c);
            escaped = true;
        } else if c == '"' {
            return Some(out);
        } else {
            out.push(c);
        }
    }
    None
}

/// First occurrence of numeric field `key` in `obj`.
fn field_number(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)? + pat.len();
    let digits: String = obj[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, tid: u64, start_us: f64, dur_us: f64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            cat: "host".into(),
            pid: SERVICE_PID,
            tid,
            start_us,
            dur_us,
            args: Vec::new(),
        }
    }

    #[test]
    fn nested_spans_emit_balanced_events() {
        let spans = vec![
            span("request", 0, 0.0, 100.0),
            span("queue_wait", 0, 0.0, 10.0),
            span("execute", 0, 10.0, 80.0),
            span("verify", 0, 90.0, 8.0),
            span("request", 1, 50.0, 60.0),
        ];
        let json = chrome_trace(&spans);
        validate_chrome_trace(&json).unwrap();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 5);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 5);
    }

    #[test]
    fn children_are_clamped_into_parents() {
        // The modelled child nominally outlives its wall-clock parent;
        // export must still balance and validate.
        let spans = vec![span("execute", 3, 0.0, 50.0), span("kernel", 3, 10.0, 500.0)];
        let json = chrome_trace(&spans);
        validate_chrome_trace(&json).unwrap();
    }

    #[test]
    fn device_lanes_emit_complete_events() {
        let mut spans = vec![span("request", 0, 0.0, 10.0)];
        spans.push(SpanRecord {
            name: "lzss#b0".into(),
            cat: "compute".into(),
            pid: DEVICE_PID_BASE,
            tid: 2,
            start_us: 1.0,
            dur_us: 3.0,
            args: Vec::new(),
        });
        let json = chrome_trace(&spans);
        validate_chrome_trace(&json).unwrap();
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 1);
        assert!(json.contains("gpu0 (modelled SMs)"));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        let unclosed = write_chrome_trace(&[ChromeEvent {
            name: "open".into(),
            cat: "host".into(),
            ph: 'B',
            ts_us: 0.0,
            dur_us: None,
            pid: 1,
            tid: 0,
            args: Vec::new(),
        }]);
        assert!(validate_chrome_trace(&unclosed).is_err());

        let regressed = write_chrome_trace(&[
            ChromeEvent {
                name: "a".into(),
                cat: "host".into(),
                ph: 'B',
                ts_us: 10.0,
                dur_us: None,
                pid: 1,
                tid: 0,
                args: Vec::new(),
            },
            ChromeEvent {
                name: "a".into(),
                cat: "host".into(),
                ph: 'E',
                ts_us: 5.0,
                dur_us: None,
                pid: 1,
                tid: 0,
                args: Vec::new(),
            },
        ]);
        assert!(validate_chrome_trace(&regressed).is_err());

        assert!(validate_chrome_trace("not json").is_err());
    }

    #[test]
    fn host_spans_sharing_an_end_instant_agree_exactly() {
        let recorder = TraceRecorder::new();
        let end = Instant::now() + std::time::Duration::from_millis(1517);
        // Many distinct starts, one end: every recorded span must
        // reproduce the identical end timestamp through start + dur,
        // despite the double rounding (batch-mates share one dequeue).
        for i in 0..256 {
            let start = Instant::now() + std::time::Duration::from_nanos(i * 7919);
            recorder.host_span("queue_wait", SERVICE_PID, i, start, end, Vec::new());
        }
        let spans = recorder.spans();
        let first = spans[0].end_us();
        for s in &spans {
            assert_eq!(s.end_us(), first, "span on lane {} drifted an ulp", s.tid);
        }
    }

    #[test]
    fn recorder_caps_span_buffer() {
        let recorder = TraceRecorder::new();
        for i in 0..(SPAN_CAP + 10) {
            recorder.record(span("s", 0, i as f64, 1.0));
        }
        assert_eq!(recorder.spans().len(), SPAN_CAP);
        assert_eq!(recorder.dropped(), 10);
    }
}
