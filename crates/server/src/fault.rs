//! Deterministic device-failure injection for degradation testing.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// A deterministic plan for injecting simulated device failures into GPU
/// job attempts. The workers consult the plan once per GPU attempt; an
/// injected failure is handled exactly like a real launch failure and
/// takes the bounded-retry → CPU-fallback path.
#[derive(Debug, Default)]
pub struct FaultPlan {
    mode: Mode,
    consulted: AtomicU64,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum Mode {
    #[default]
    None,
    FirstN(u64),
    EveryNth(u64),
}

impl FaultPlan {
    /// Never injects a failure (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Fails the first `n` GPU attempts, then behaves normally —
    /// models a device that recovers (or is avoided) after a burst.
    pub fn fail_first(n: u64) -> Self {
        Self { mode: Mode::FirstN(n), consulted: AtomicU64::new(0) }
    }

    /// Fails every `n`-th GPU attempt (1-based; `n == 0` never fails) —
    /// models a persistently flaky device.
    pub fn every_nth(n: u64) -> Self {
        Self { mode: Mode::EveryNth(n), consulted: AtomicU64::new(0) }
    }

    /// Consumes one GPU-attempt slot; `true` means inject a failure.
    pub(crate) fn should_fail(&self) -> bool {
        let i = self.consulted.fetch_add(1, Relaxed);
        match self.mode {
            Mode::None => false,
            Mode::FirstN(n) => i < n,
            Mode::EveryNth(n) => n != 0 && (i + 1).is_multiple_of(n),
        }
    }

    /// GPU attempts consulted so far.
    pub fn consulted(&self) -> u64 {
        self.consulted.load(Relaxed)
    }
}

impl Clone for FaultPlan {
    fn clone(&self) -> Self {
        Self { mode: self.mode, consulted: AtomicU64::new(self.consulted()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let plan = FaultPlan::none();
        assert!((0..100).all(|_| !plan.should_fail()));
        assert_eq!(plan.consulted(), 100);
    }

    #[test]
    fn fail_first_fails_exactly_n() {
        let plan = FaultPlan::fail_first(3);
        let fails: Vec<bool> = (0..6).map(|_| plan.should_fail()).collect();
        assert_eq!(fails, [true, true, true, false, false, false]);
    }

    #[test]
    fn every_nth_is_periodic() {
        let plan = FaultPlan::every_nth(3);
        let fails: Vec<bool> = (0..7).map(|_| plan.should_fail()).collect();
        assert_eq!(fails, [false, false, true, false, false, true, false]);
        assert!((0..10).all(|_| !FaultPlan::every_nth(0).should_fail()));
    }
}
