//! Deterministic fault injection for degradation testing: device
//! failures (launch errors), payload corruption (bad bytes coming back
//! from a "device"), and seeded per-device chaos schedules
//! ([`culzss_gpusim::fault::DeviceFaultModel`]) driving the simulator's
//! own fault seam.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use culzss_gpusim::fault::{DeviceFaultConfig, DeviceFaultModel};

/// A deterministic plan for injecting simulated faults into job
/// attempts. Two independent fault classes share one plan:
///
/// * **Device failures** — the workers consult the plan once per GPU
///   attempt; an injected failure is handled exactly like a real launch
///   failure and takes the bounded-retry → CPU-fallback path.
/// * **Payload corruption** — the workers consult the plan once per
///   compressed output; an injected corruption damages the bytes the
///   engine produced (bit flip, tail truncation, or chunk-table
///   tampering), modelling DMA/ECC faults on the result path. The
///   verify-on-decompress gate must catch every one.
/// * **Chaos schedules** — per-device
///   [`DeviceFaultConfig`]s installed into each GPU worker's simulator
///   at startup, injecting transient/dead/slow/hang faults at the
///   launch seam itself. Deterministic per seed, so chaos runs replay
///   exactly.
#[derive(Debug, Default)]
pub struct FaultPlan {
    mode: Mode,
    consulted: AtomicU64,
    corruption: Corruption,
    corrupt_every: u64,
    corruption_consulted: AtomicU64,
    injected: AtomicU64,
    chaos_seed: u64,
    device_faults: Vec<(usize, DeviceFaultConfig)>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum Mode {
    #[default]
    None,
    FirstN(u64),
    EveryNth(u64),
}

/// How an injected corruption damages a compressed output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum Corruption {
    #[default]
    None,
    /// XOR one bit at `offset % output.len()`.
    BitFlip { offset: usize },
    /// Drop the last `bytes` bytes of the output.
    TruncateTail { bytes: usize },
    /// Flip a byte at the start of the container's chunk-size table.
    TamperTable,
}

impl FaultPlan {
    /// Never injects a fault (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Fails the first `n` GPU attempts, then behaves normally —
    /// models a device that recovers (or is avoided) after a burst.
    pub fn fail_first(n: u64) -> Self {
        Self { mode: Mode::FirstN(n), ..Self::default() }
    }

    /// Fails every `n`-th GPU attempt (1-based; `n == 0` never fails) —
    /// models a persistently flaky device.
    pub fn every_nth(n: u64) -> Self {
        Self { mode: Mode::EveryNth(n), ..Self::default() }
    }

    /// Flips one bit (at `offset`, wrapped to the output length) in
    /// every `n`-th compressed output (1-based; `n == 0` never).
    pub fn corrupt_bit_flip(mut self, every_nth: u64, offset: usize) -> Self {
        self.corruption = Corruption::BitFlip { offset };
        self.corrupt_every = every_nth;
        self
    }

    /// Truncates `bytes` off the tail of every `n`-th compressed output.
    pub fn corrupt_truncate_tail(mut self, every_nth: u64, bytes: usize) -> Self {
        self.corruption = Corruption::TruncateTail { bytes };
        self.corrupt_every = every_nth;
        self
    }

    /// Flips a byte inside the container's chunk-size table in every
    /// `n`-th compressed output — metadata damage rather than payload
    /// damage.
    pub fn corrupt_tamper_table(mut self, every_nth: u64) -> Self {
        self.corruption = Corruption::TamperTable;
        self.corrupt_every = every_nth;
        self
    }

    /// Consumes one GPU-attempt slot; `true` means inject a failure.
    pub(crate) fn should_fail(&self) -> bool {
        let i = self.consulted.fetch_add(1, Relaxed);
        match self.mode {
            Mode::None => false,
            Mode::FirstN(n) => i < n,
            Mode::EveryNth(n) => n != 0 && (i + 1).is_multiple_of(n),
        }
    }

    /// Consumes one compressed-output slot and, when the cadence hits,
    /// damages `output` in place. Returns `true` iff bytes actually
    /// changed (counted by
    /// [`injected_corruptions`](Self::injected_corruptions)).
    pub(crate) fn corrupt_payload(&self, output: &mut Vec<u8>) -> bool {
        let i = self.corruption_consulted.fetch_add(1, Relaxed);
        if self.corrupt_every == 0 || !(i + 1).is_multiple_of(self.corrupt_every) {
            return false;
        }
        let damaged = match self.corruption {
            Corruption::None => false,
            Corruption::BitFlip { offset } => {
                if output.is_empty() {
                    false
                } else {
                    let at = offset % output.len();
                    output[at] ^= 0x10;
                    true
                }
            }
            Corruption::TruncateTail { bytes } => {
                let cut = bytes.min(output.len());
                output.truncate(output.len() - cut);
                cut > 0
            }
            Corruption::TamperTable => {
                // First byte of the comp-size table, right after the
                // fixed container header.
                let at = culzss_lzss::container::Container::HEADER_LEN;
                if output.len() > at {
                    output[at] ^= 0x01;
                    true
                } else {
                    false
                }
            }
        };
        if damaged {
            self.injected.fetch_add(1, Relaxed);
        }
        damaged
    }

    /// Sets the chaos seed that all per-device fault schedules derive
    /// their randomness from. Two plans with the same seed and the same
    /// schedule replay identically.
    pub fn chaos(mut self, seed: u64) -> Self {
        self.chaos_seed = seed;
        self
    }

    /// Kills `device` at its `at`-th launch; `heal_after` launches
    /// later it comes back (`None` = stays dead).
    pub fn device_dead(mut self, device: usize, at: u64, heal_after: Option<u64>) -> Self {
        self.device_faults.push((device, DeviceFaultConfig::default().dead_at(at, heal_after)));
        self
    }

    /// Makes `device` fail each launch independently with probability
    /// `rate` (seeded, deterministic).
    pub fn device_flaky(mut self, device: usize, rate: f64) -> Self {
        self.device_faults.push((device, DeviceFaultConfig::default().flaky(rate)));
        self
    }

    /// Multiplies `device`'s simulated kernel latency by `multiplier`
    /// (a brownout rather than an outage).
    pub fn device_slow(mut self, device: usize, multiplier: f64) -> Self {
        self.device_faults.push((device, DeviceFaultConfig::default().slow(multiplier)));
        self
    }

    /// Hangs `device`'s `at`-th launch for `seconds` of host wall
    /// clock before failing it — watchdog-reclassification fodder.
    pub fn device_hang(mut self, device: usize, at: u64, seconds: f64) -> Self {
        self.device_faults.push((device, DeviceFaultConfig::default().hang_at(at, seconds)));
        self
    }

    /// Builds the merged fault model for `device`, or `None` when the
    /// chaos schedule never mentions it. Each entry for the device is
    /// folded into one config (later entries win per field); the model
    /// seed mixes the plan-wide chaos seed with the device index so
    /// sibling devices draw independent coins.
    pub(crate) fn device_model(&self, device: usize) -> Option<DeviceFaultModel> {
        let mut merged: Option<DeviceFaultConfig> = None;
        for (d, cfg) in &self.device_faults {
            if *d != device {
                continue;
            }
            let base = merged.take().unwrap_or_default();
            let mut next = base;
            if cfg.transient_rate > 0.0 {
                next.transient_rate = cfg.transient_rate;
            }
            if cfg.dead_at.is_some() {
                next.dead_at = cfg.dead_at;
                next.heal_after = cfg.heal_after;
            }
            if cfg.slow_multiplier.is_some() {
                next.slow_multiplier = cfg.slow_multiplier;
            }
            if cfg.hang_at.is_some() {
                next.hang_at = cfg.hang_at;
                next.hang_seconds = cfg.hang_seconds;
            }
            merged = Some(next);
        }
        let mut cfg = merged?;
        cfg.seed = self.chaos_seed ^ (device as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Some(DeviceFaultModel::new(cfg))
    }

    /// True when the plan carries a chaos schedule for any device.
    pub fn has_chaos(&self) -> bool {
        !self.device_faults.is_empty()
    }

    /// The raw chaos schedule: `(device, fault config)` entries in the
    /// order they were added (later entries override per field group).
    pub fn device_faults(&self) -> &[(usize, DeviceFaultConfig)] {
        &self.device_faults
    }

    /// GPU attempts consulted so far.
    pub fn consulted(&self) -> u64 {
        self.consulted.load(Relaxed)
    }

    /// Corruptions actually injected so far (bytes really changed) —
    /// the number the service's `integrity_failures` counter must
    /// reconcile against when verification is on.
    pub fn injected_corruptions(&self) -> u64 {
        self.injected.load(Relaxed)
    }
}

impl Clone for FaultPlan {
    fn clone(&self) -> Self {
        Self {
            mode: self.mode,
            consulted: AtomicU64::new(self.consulted()),
            corruption: self.corruption,
            corrupt_every: self.corrupt_every,
            corruption_consulted: AtomicU64::new(self.corruption_consulted.load(Relaxed)),
            injected: AtomicU64::new(self.injected_corruptions()),
            chaos_seed: self.chaos_seed,
            device_faults: self.device_faults.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let plan = FaultPlan::none();
        assert!((0..100).all(|_| !plan.should_fail()));
        assert_eq!(plan.consulted(), 100);
        let mut out = vec![1u8; 64];
        assert!(!plan.corrupt_payload(&mut out));
        assert_eq!(out, vec![1u8; 64]);
        assert_eq!(plan.injected_corruptions(), 0);
    }

    #[test]
    fn fail_first_fails_exactly_n() {
        let plan = FaultPlan::fail_first(3);
        let fails: Vec<bool> = (0..6).map(|_| plan.should_fail()).collect();
        assert_eq!(fails, [true, true, true, false, false, false]);
    }

    #[test]
    fn every_nth_is_periodic() {
        let plan = FaultPlan::every_nth(3);
        let fails: Vec<bool> = (0..7).map(|_| plan.should_fail()).collect();
        assert_eq!(fails, [false, false, true, false, false, true, false]);
        assert!((0..10).all(|_| !FaultPlan::every_nth(0).should_fail()));
    }

    #[test]
    fn bit_flip_hits_on_cadence_and_is_deterministic() {
        let plan = FaultPlan::none().corrupt_bit_flip(2, 5);
        let clean = vec![0u8; 16];
        let mut a = clean.clone();
        assert!(!plan.corrupt_payload(&mut a)); // 1st: clean
        assert_eq!(a, clean);
        assert!(plan.corrupt_payload(&mut a)); // 2nd: flipped
        assert_eq!(a[5], 0x10);
        assert_eq!(plan.injected_corruptions(), 1);
    }

    #[test]
    fn truncate_and_tamper_damage_as_described() {
        let plan = FaultPlan::none().corrupt_truncate_tail(1, 4);
        let mut out = vec![7u8; 10];
        assert!(plan.corrupt_payload(&mut out));
        assert_eq!(out.len(), 6);

        let plan = FaultPlan::none().corrupt_tamper_table(1);
        let at = culzss_lzss::container::Container::HEADER_LEN;
        let mut out = vec![0u8; at + 8];
        assert!(plan.corrupt_payload(&mut out));
        assert_eq!(out[at], 0x01);
        // Too short to hold a table: nothing to damage, not counted.
        let mut tiny = vec![0u8; 4];
        assert!(!plan.corrupt_payload(&mut tiny));
        assert_eq!(plan.injected_corruptions(), 1);
    }

    #[test]
    fn empty_output_cannot_be_bit_flipped() {
        let plan = FaultPlan::none().corrupt_bit_flip(1, 0);
        let mut out = Vec::new();
        assert!(!plan.corrupt_payload(&mut out));
        assert_eq!(plan.injected_corruptions(), 0);
    }

    #[test]
    fn chaos_schedule_builds_models_only_for_named_devices() {
        let plan = FaultPlan::none().chaos(42).device_dead(1, 3, Some(5)).device_flaky(1, 0.1);
        assert!(plan.has_chaos());
        assert!(plan.device_model(0).is_none());
        let model = plan.device_model(1).expect("device 1 scheduled");
        let cfg = model.config();
        assert_eq!(cfg.dead_at, Some(3));
        assert_eq!(cfg.heal_after, Some(5));
        assert!((cfg.transient_rate - 0.1).abs() < 1e-12);
        assert_ne!(cfg.seed, 42, "seed must mix in the device index");
    }

    #[test]
    fn chaos_models_replay_identically_per_seed() {
        let schedule =
            |seed| FaultPlan::none().chaos(seed).device_flaky(0, 0.3).device_model(0).unwrap();
        let run = |m: &DeviceFaultModel| (0..64).map(|_| m.on_launch()).collect::<Vec<_>>();
        assert_eq!(run(&schedule(7)), run(&schedule(7)));
        assert_ne!(run(&schedule(7)), run(&schedule(8)));
    }

    #[test]
    fn clone_carries_the_chaos_schedule() {
        let plan = FaultPlan::none().chaos(9).device_slow(2, 3.0);
        let cloned = plan.clone();
        let model = cloned.device_model(2).expect("schedule survives clone");
        assert_eq!(model.config().slow_multiplier, Some(3.0));
    }

    #[test]
    fn clone_preserves_corruption_state() {
        let plan = FaultPlan::none().corrupt_bit_flip(2, 0);
        let mut out = vec![0u8; 8];
        plan.corrupt_payload(&mut out); // consult #1
        let cloned = plan.clone();
        let mut out2 = vec![0u8; 8];
        assert!(cloned.corrupt_payload(&mut out2)); // consult #2 hits
    }
}
