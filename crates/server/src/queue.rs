//! Bounded, tenant-aware priority admission queue.
//!
//! Admission control is the service's backpressure contract: a full
//! queue or an over-quota tenant is refused *immediately* with a typed
//! [`SubmitError`] instead of blocking the submitter — callers decide
//! whether to retry, shed, or spill. Admitted jobs dequeue by priority
//! (FIFO within a priority) in same-kind batch windows; a second lane
//! carries retries. A retried job may be delayed by backoff
//! ([`Job::not_before`]), pinned to the CPU fallback ([`Job::force_cpu`])
//! or steered away from devices that failed or denied it
//! ([`Job::avoid_devices`]) — the lane honors all three when matching
//! jobs to worker classes.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::job::{Job, SubmitError};

/// A coalesced window of same-kind jobs handed to one worker, stamped
/// with the instant it left the queue. Every job in the window stops
/// waiting at that one instant — queue-wait measurement must use it, not
/// each job's own service start (which would fold earlier jobs' service
/// time into later jobs' reported wait).
pub(crate) struct Batch {
    pub jobs: Vec<Job>,
    pub dequeued_at: Instant,
}

/// Which engine a worker drives; decides which lanes (and which retry
/// jobs) it may serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerClass {
    /// A GPU worker owning one device index.
    Gpu { device: usize },
    /// A dedicated CPU worker.
    Cpu,
}

struct Entry {
    rank: u8,
    seq: u64,
    job: Job,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.seq == other.seq
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher rank first; older (smaller seq) first within.
        self.rank.cmp(&other.rank).then_with(|| other.seq.cmp(&self.seq))
    }
}

struct State {
    heap: BinaryHeap<Entry>,
    /// Retry lane: failed-elsewhere, rerouted, and CPU-fallback jobs,
    /// each possibly delayed by backoff.
    lane: VecDeque<Job>,
    tenant_inflight: HashMap<String, usize>,
    seq: u64,
    accepting: bool,
    /// Batches handed to workers whose jobs have not all resolved yet —
    /// they may still requeue onto the retry lane, so drain waits for
    /// them.
    active_batches: usize,
}

pub(crate) struct AdmissionQueue {
    depth_limit: usize,
    tenant_cap: usize,
    has_cpu_workers: bool,
    state: Mutex<State>,
    available: Condvar,
}

impl AdmissionQueue {
    pub fn new(depth_limit: usize, tenant_cap: usize, has_cpu_workers: bool) -> Self {
        Self {
            depth_limit: depth_limit.max(1),
            tenant_cap: tenant_cap.max(1),
            has_cpu_workers,
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                lane: VecDeque::new(),
                tenant_inflight: HashMap::new(),
                seq: 0,
                accepting: true,
                active_batches: 0,
            }),
            available: Condvar::new(),
        }
    }

    /// Admits `job` or refuses with a typed error. On success the
    /// tenant's in-flight count is incremented (released on final
    /// resolution) and the post-admission queue depth is returned.
    pub fn submit(&self, job: Job) -> Result<usize, SubmitError> {
        let mut s = self.state.lock();
        if !s.accepting {
            return Err(SubmitError::ShuttingDown);
        }
        let depth = s.heap.len() + s.lane.len();
        if depth >= self.depth_limit {
            return Err(SubmitError::Overloaded { depth, limit: self.depth_limit });
        }
        let in_flight = s.tenant_inflight.get(&job.tenant).copied().unwrap_or(0);
        if in_flight >= self.tenant_cap {
            return Err(SubmitError::TenantOverLimit {
                tenant: job.tenant.clone(),
                in_flight,
                cap: self.tenant_cap,
            });
        }
        *s.tenant_inflight.entry(job.tenant.clone()).or_insert(0) += 1;
        let seq = s.seq;
        s.seq += 1;
        s.heap.push(Entry { rank: job.priority.rank(), seq, job });
        drop(s);
        self.available.notify_one();
        Ok(depth + 1)
    }

    /// Re-enqueues an already-admitted job onto the retry lane. No
    /// admission check: the job's capacity was claimed at submit time.
    /// Routing (CPU pin, avoided devices, backoff delay) is read from
    /// the job itself at dequeue time.
    pub fn requeue(&self, job: Job) {
        self.state.lock().lane.push_back(job);
        self.available.notify_all();
    }

    /// Whether `class` may run a retry-lane `job` (ignoring backoff
    /// readiness). CPU workers own the CPU-pinned jobs; GPU workers take
    /// the rest, skipping devices the job must avoid — and degrade to
    /// hosting CPU-pinned jobs themselves only when the pool has no
    /// dedicated CPU workers.
    fn lane_serves(&self, class: WorkerClass, job: &Job) -> bool {
        match class {
            WorkerClass::Cpu => job.force_cpu,
            WorkerClass::Gpu { device } => {
                if job.force_cpu {
                    !self.has_cpu_workers
                } else {
                    !job.avoids(device)
                }
            }
        }
    }

    /// Blocks for the next window of same-kind jobs this worker class
    /// may serve; `None` once the service is shutting down and fully
    /// drained (including potential requeues from batches that are
    /// still executing). Backoff-delayed retries are never handed out
    /// early — a worker with nothing else to do sleeps until the
    /// earliest one ripens.
    pub fn next_batch(
        &self,
        class: WorkerClass,
        max_jobs: usize,
        max_bytes: usize,
    ) -> Option<Batch> {
        let max_jobs = max_jobs.max(1);
        let mut s = self.state.lock();
        loop {
            let now = Instant::now();
            if !s.lane.is_empty() {
                let mut taken: Vec<Job> = Vec::new();
                let mut rest = VecDeque::with_capacity(s.lane.len());
                let mut kind = None;
                let mut bytes = 0usize;
                for job in std::mem::take(&mut s.lane) {
                    let take = self.lane_serves(class, &job)
                        && job.ready_at(now)
                        && kind.is_none_or(|k| k == job.kind)
                        && taken.len() < max_jobs
                        && (taken.is_empty() || bytes < max_bytes);
                    if take {
                        bytes += job.payload.len();
                        kind = Some(job.kind);
                        taken.push(job);
                    } else {
                        rest.push_back(job);
                    }
                }
                s.lane = rest;
                if !taken.is_empty() {
                    s.active_batches += 1;
                    return Some(Batch { jobs: taken, dequeued_at: Instant::now() });
                }
            }
            if !s.heap.is_empty() {
                let first = s.heap.pop().expect("non-empty heap").job;
                let kind = first.kind;
                let mut bytes = first.payload.len();
                let mut jobs = vec![first];
                while jobs.len() < max_jobs
                    && bytes < max_bytes
                    && s.heap.peek().is_some_and(|e| e.job.kind == kind)
                {
                    let job = s.heap.pop().expect("peeked").job;
                    bytes += job.payload.len();
                    jobs.push(job);
                }
                s.active_batches += 1;
                return Some(Batch { jobs, dequeued_at: Instant::now() });
            }
            if !s.accepting && s.lane.is_empty() && s.active_batches == 0 {
                return None;
            }
            // Nothing runnable. If this class has lane jobs still in
            // backoff, sleep only until the earliest ripens; otherwise
            // wait for a submit/requeue/shutdown notification.
            let ripens = s
                .lane
                .iter()
                .filter(|j| self.lane_serves(class, j))
                .filter_map(|j| j.not_before)
                .min();
            match ripens {
                Some(t) => {
                    let timeout = t.saturating_duration_since(Instant::now());
                    if timeout.is_zero() {
                        continue;
                    }
                    let _ = self.available.wait_for(&mut s, timeout);
                }
                None => self.available.wait(&mut s),
            }
        }
    }

    /// Marks a batch handed out by [`Self::next_batch`] fully resolved.
    pub fn finish_batch(&self) {
        let mut s = self.state.lock();
        s.active_batches -= 1;
        drop(s);
        self.available.notify_all();
    }

    /// Releases one unit of `tenant`'s in-flight quota.
    pub fn release_tenant(&self, tenant: &str) {
        let mut s = self.state.lock();
        if let Some(n) = s.tenant_inflight.get_mut(tenant) {
            *n -= 1;
            if *n == 0 {
                s.tenant_inflight.remove(tenant);
            }
        }
    }

    /// Stops admitting new jobs; queued and in-flight jobs still drain.
    pub fn begin_shutdown(&self) {
        self.state.lock().accepting = false;
        self.available.notify_all();
    }

    /// Jobs currently queued (not yet handed to a worker).
    pub fn depth(&self) -> usize {
        let s = self.state.lock();
        s.heap.len() + s.lane.len()
    }

    /// `tenant`'s admitted-but-unresolved job count.
    pub fn tenant_in_flight(&self, tenant: &str) -> usize {
        self.state.lock().tenant_inflight.get(tenant).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobKind, JobResult, Priority};
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    const GPU0: WorkerClass = WorkerClass::Gpu { device: 0 };

    fn job(
        id: u64,
        tenant: &str,
        kind: JobKind,
        priority: Priority,
    ) -> (Job, mpsc::Receiver<JobResult>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                id: JobId(id),
                tenant: tenant.into(),
                kind,
                payload: vec![0u8; 16],
                priority,
                accepted_at: Instant::now(),
                deadline: None,
                attempts: 0,
                force_cpu: false,
                not_before: None,
                avoid_devices: 0,
                responder: tx,
            },
            rx,
        )
    }

    #[test]
    fn priority_then_fifo_order() {
        let q = AdmissionQueue::new(16, 16, false);
        let mut keep = Vec::new();
        for (id, p) in
            [(0, Priority::Normal), (1, Priority::Low), (2, Priority::High), (3, Priority::Normal)]
        {
            let (j, rx) = job(id, "t", JobKind::Compress, p);
            keep.push(rx);
            q.submit(j).unwrap();
        }
        let order: Vec<u64> = (0..4)
            .map(|_| {
                let batch = q.next_batch(GPU0, 1, usize::MAX).unwrap();
                q.finish_batch();
                batch.jobs[0].id.0
            })
            .collect();
        assert_eq!(order, [2, 0, 3, 1]);
    }

    #[test]
    fn batches_coalesce_same_kind_only() {
        let q = AdmissionQueue::new(16, 16, false);
        let mut keep = Vec::new();
        for (id, kind) in [
            (0, JobKind::Compress),
            (1, JobKind::Compress),
            (2, JobKind::Decompress),
            (3, JobKind::Compress),
        ] {
            let (j, rx) = job(id, "t", kind, Priority::Normal);
            keep.push(rx);
            q.submit(j).unwrap();
        }
        let ids = |batch: Batch| batch.jobs.iter().map(|j| j.id.0).collect::<Vec<_>>();
        let b1 = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        q.finish_batch();
        assert_eq!(ids(b1), [0, 1]);
        let b2 = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        q.finish_batch();
        assert_eq!(ids(b2), [2]);
        let b3 = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        q.finish_batch();
        assert_eq!(ids(b3), [3]);
    }

    #[test]
    fn typed_rejections() {
        let q = AdmissionQueue::new(2, 1, false);
        let (j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        q.submit(j0).unwrap();
        // Tenant cap before queue bound.
        let (j1, _rx1) = job(1, "a", JobKind::Compress, Priority::Normal);
        assert!(matches!(
            q.submit(j1),
            Err(SubmitError::TenantOverLimit { in_flight: 1, cap: 1, .. })
        ));
        let (j2, _rx2) = job(2, "b", JobKind::Compress, Priority::Normal);
        q.submit(j2).unwrap();
        let (j3, _rx3) = job(3, "c", JobKind::Compress, Priority::Normal);
        assert!(matches!(q.submit(j3), Err(SubmitError::Overloaded { depth: 2, limit: 2 })));
        q.begin_shutdown();
        let (j4, _rx4) = job(4, "d", JobKind::Compress, Priority::Normal);
        assert!(matches!(q.submit(j4), Err(SubmitError::ShuttingDown)));
    }

    #[test]
    fn tenant_quota_releases_on_resolution() {
        let q = AdmissionQueue::new(8, 1, false);
        let (j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        q.submit(j0).unwrap();
        assert_eq!(q.tenant_in_flight("a"), 1);
        // Popping does NOT release the quota — resolution does.
        let batch = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(q.tenant_in_flight("a"), 1);
        drop(batch);
        q.release_tenant("a");
        q.finish_batch();
        assert_eq!(q.tenant_in_flight("a"), 0);
        let (j1, _rx1) = job(1, "a", JobKind::Compress, Priority::Normal);
        q.submit(j1).unwrap();
    }

    #[test]
    fn shutdown_drains_then_returns_none() {
        let q = AdmissionQueue::new(8, 8, false);
        let (j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        q.submit(j0).unwrap();
        q.begin_shutdown();
        let batch = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(batch.jobs.len(), 1);
        // A still-active batch may requeue onto the retry lane, so drain
        // is not complete until it is finished.
        q.requeue(batch.jobs.into_iter().next().unwrap());
        q.finish_batch();
        let fallback = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(fallback.jobs.len(), 1);
        drop(fallback);
        q.finish_batch();
        assert!(q.next_batch(GPU0, 8, usize::MAX).is_none());
        assert!(q.next_batch(WorkerClass::Cpu, 8, usize::MAX).is_none());
    }

    #[test]
    fn cpu_pinned_retries_reserved_for_cpu_workers_when_present() {
        let q = AdmissionQueue::new(8, 8, true);
        let (mut j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        j0.force_cpu = true;
        q.requeue(j0);
        let (j1, _rx1) = job(1, "a", JobKind::Compress, Priority::Normal);
        q.submit(j1).unwrap();
        // The GPU worker sees only the main heap job.
        let batch = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(batch.jobs[0].id.0, 1);
        q.finish_batch();
        // The CPU worker drains the pinned retry.
        let batch = q.next_batch(WorkerClass::Cpu, 8, usize::MAX).unwrap();
        assert_eq!(batch.jobs[0].id.0, 0);
        q.finish_batch();
    }

    #[test]
    fn retry_lane_honors_avoided_devices() {
        let q = AdmissionQueue::new(8, 8, false);
        let (mut j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        j0.mark_avoid(0);
        q.requeue(j0);
        let (j1, _rx1) = job(1, "a", JobKind::Compress, Priority::Normal);
        q.requeue(j1);
        // gpu0 must skip the job that failed there and take the other,
        // even though the avoided job is ahead of it in the lane.
        let batch = q.next_batch(GPU0, 1, usize::MAX).unwrap();
        assert_eq!(batch.jobs[0].id.0, 1);
        q.finish_batch();
        // gpu1 serves the job gpu0 could not.
        let batch = q.next_batch(WorkerClass::Gpu { device: 1 }, 1, usize::MAX).unwrap();
        assert_eq!(batch.jobs[0].id.0, 0);
        q.finish_batch();
    }

    #[test]
    fn backoff_delays_dequeue_until_ready() {
        let q = AdmissionQueue::new(8, 8, false);
        let (mut j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        let delay = Duration::from_millis(30);
        j0.not_before = Some(Instant::now() + delay);
        let started = Instant::now();
        q.requeue(j0);
        let batch = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(batch.jobs[0].id.0, 0);
        assert!(
            started.elapsed() >= delay - Duration::from_millis(2),
            "dequeued {:?} after requeue, before the {delay:?} backoff",
            started.elapsed()
        );
        q.finish_batch();
    }
}
