//! Sharded, tenant-fair admission queue with work stealing and
//! token-bucket rate limiting.
//!
//! Admission control is the service's backpressure contract: a full
//! queue or an over-rate tenant is refused *immediately* with a typed
//! [`SubmitError`] instead of blocking the submitter — callers decide
//! whether to retry, shed, or spill. The queue is organised in three
//! layers (DESIGN.md §18):
//!
//! * **Token bucket per tenant.** Each tenant holds a bucket of
//!   bytes-weighted data permits refilled at a configured rate up to a
//!   burst capacity. A submission costs its payload size; a tenant may
//!   *borrow* a bounded amount against future refill (the bucket level
//!   goes negative down to the borrow limit), so a short burst rides
//!   through while a sustained overrun is refused with
//!   [`SubmitError::TenantOverLimit`]. With no rate configured the
//!   bucket admits everything.
//! * **Per-device run queues (shards).** Admitted jobs land on the
//!   least-loaded shard whose circuit breaker is not open; each GPU
//!   worker drains its own shard and, when idle, *steals* a window from
//!   the deepest peer shard whose breaker is not open — open-breaker
//!   devices are never steal targets, and a worker whose own breaker is
//!   open does not steal (it only drains its own backlog into the
//!   denial/fallback path). CPU workers have no home shard and pull
//!   from the deepest shard regardless of breaker state.
//! * **Weighted-fair ordering.** Within each shard, jobs dequeue by
//!   priority band, and *within* a band by deficit round-robin across
//!   tenants: each visit grants a tenant one quantum of bytes, a job is
//!   served once the tenant's deficit covers its payload, so one hot
//!   tenant can no longer monopolise a band the way FIFO-within-priority
//!   allowed.
//!
//! A second lane carries retries. A retried job may be delayed by
//! backoff ([`Job::not_before`]), pinned to the CPU fallback
//! ([`Job::force_cpu`]) or steered away from devices that failed or
//! denied it ([`Job::avoid_devices`]) — the lane honors all three when
//! matching jobs to worker classes.
//!
//! Deadlines are evaluated per job at **batch-build time**: a job whose
//! deadline passed while it waited (or while its batch window was being
//! coalesced) is diverted into [`Batch::expired`] instead of occupying
//! an execution slot, and the worker resolves it as
//! [`crate::JobError::DeadlineMissed`] without running it.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use crate::health::{BreakerState, HealthRegistry};
use crate::job::{Job, JobKind, SubmitError};

/// A coalesced window of same-kind jobs handed to one worker, stamped
/// with the instant it left the queue. Every job in the window stops
/// waiting at that one instant — queue-wait measurement must use it, not
/// each job's own service start (which would fold earlier jobs' service
/// time into later jobs' reported wait).
pub(crate) struct Batch {
    /// Jobs to execute, all of one kind.
    pub jobs: Vec<Job>,
    /// Jobs whose deadline had already passed when the window was
    /// built; the worker resolves them as deadline misses without
    /// executing them (they are exempt from the same-kind rule and do
    /// not consume window slots).
    pub expired: Vec<Job>,
    /// The shard this window was stolen from, when the serving worker
    /// was not its owner (`None` for home-shard and retry-lane windows,
    /// and for CPU pulls — the CPU lane has no home to steal from).
    pub stolen_from: Option<usize>,
    pub dequeued_at: Instant,
}

/// Which engine a worker drives; decides which lanes (and which retry
/// jobs) it may serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerClass {
    /// A GPU worker owning one device index.
    Gpu { device: usize },
    /// A dedicated CPU worker.
    Cpu,
}

/// Per-tenant QoS tunables (token bucket + fairness quantum).
#[derive(Debug, Clone)]
pub(crate) struct QosConfig {
    /// Data-permit refill rate in payload bytes per second per tenant;
    /// `None` disables rate limiting (every submission is admitted as
    /// far as the bucket is concerned).
    pub rate_bytes_per_sec: Option<f64>,
    /// Bucket capacity: the largest burst of payload bytes a tenant can
    /// submit instantaneously from a full bucket.
    pub burst_bytes: f64,
    /// How many bytes a tenant may borrow against future refill (the
    /// bucket floor is `-borrow_bytes`).
    pub borrow_bytes: f64,
    /// Deficit round-robin quantum: bytes of service granted per tenant
    /// per rotation visit within a priority band.
    pub quantum_bytes: u64,
}

impl Default for QosConfig {
    fn default() -> Self {
        Self {
            rate_bytes_per_sec: None,
            burst_bytes: (8 << 20) as f64,
            borrow_bytes: (8 << 20) as f64,
            quantum_bytes: 64 << 10,
        }
    }
}

/// Successful admission: the post-admission queue depth, the shard the
/// job landed on, and how many permit bytes were borrowed against the
/// tenant's future refill (0 when the bucket covered the cost).
pub(crate) struct Admitted {
    pub depth: usize,
    pub shard: usize,
    pub borrowed: u64,
}

/// One tenant's token bucket. `level` is the spendable permit balance in
/// payload bytes; negative means the tenant is in borrowed territory and
/// refill pays the debt before permits accumulate again.
struct TenantBucket {
    level: f64,
    refreshed: Instant,
}

/// One priority band of one shard: per-tenant FIFO queues served by
/// deficit round-robin. Tenants enter the rotation when their first job
/// arrives and leave it (deficit reset) when their queue drains — the
/// classic DRR activation rule, so an idle tenant cannot bank credit.
#[derive(Default)]
struct Band {
    queues: HashMap<String, VecDeque<Job>>,
    rotation: VecDeque<String>,
    deficit: HashMap<String, u64>,
    /// Whether the tenant at the rotation front has already received its
    /// quantum for the current turn. A turn spans multiple `pop` calls
    /// (the tenant keeps serving while its deficit lasts), so without
    /// this flag the front tenant would be re-credited on every call and
    /// never yield the band.
    credited: bool,
}

impl Band {
    fn push(&mut self, job: Job) {
        let tenant = job.tenant.clone();
        let queue = self.queues.entry(tenant.clone()).or_default();
        if queue.is_empty() && !self.rotation.contains(&tenant) {
            self.rotation.push_back(tenant);
        }
        queue.push_back(job);
    }

    /// Ends the front tenant's turn: move it to the rotation tail.
    fn rotate(&mut self) {
        self.rotation.rotate_left(1);
        self.credited = false;
    }

    /// Pops the next job by deficit round-robin, optionally restricted
    /// to one [`JobKind`] (batch coalescing). Each turn grants the
    /// visited tenant one quantum, so a head larger than the quantum is
    /// reachable in a bounded number of rotation rounds and the band is
    /// always work-conserving.
    fn pop_matching(&mut self, kind: Option<JobKind>, quantum: u64) -> Option<Job> {
        if self.rotation.is_empty() {
            return None;
        }
        loop {
            let mut any_eligible = false;
            for _ in 0..self.rotation.len() {
                let tenant = self.rotation.front().expect("non-empty rotation").clone();
                let queue = self.queues.get_mut(&tenant).expect("rotation member has a queue");
                let head = queue.front().expect("queued tenant has a head");
                if kind.is_some_and(|k| k != head.kind) {
                    self.rotate();
                    continue;
                }
                any_eligible = true;
                let cost = (head.payload.len() as u64).max(1);
                let deficit = self.deficit.entry(tenant.clone()).or_insert(0);
                if !self.credited {
                    *deficit += quantum.max(1);
                    self.credited = true;
                }
                if *deficit >= cost {
                    *deficit -= cost;
                    let job = queue.pop_front().expect("non-empty queue");
                    if queue.is_empty() {
                        self.queues.remove(&tenant);
                        self.deficit.remove(&tenant);
                        self.rotation.pop_front();
                        self.credited = false;
                    }
                    // Otherwise the tenant stays at the front with its
                    // remaining deficit: the turn continues on the next
                    // call until the deficit no longer covers the head.
                    return Some(job);
                }
                self.rotate();
            }
            if !any_eligible {
                return None;
            }
        }
    }
}

/// One device's run queue: three priority bands plus depth accounting.
#[derive(Default)]
struct Shard {
    /// Indexed by [`crate::Priority::rank`] (0 = Low … 2 = High).
    bands: [Band; 3],
    jobs: usize,
    bytes: u64,
}

impl Shard {
    fn push(&mut self, job: Job) {
        self.jobs += 1;
        self.bytes += job.payload.len() as u64;
        self.bands[job.priority.rank() as usize].push(job);
    }

    /// Pops the next job in strict band order (High before Normal before
    /// Low), DRR within the band, optionally kind-restricted.
    fn pop_matching(&mut self, kind: Option<JobKind>, quantum: u64) -> Option<Job> {
        for band in self.bands.iter_mut().rev() {
            if let Some(job) = band.pop_matching(kind, quantum) {
                self.jobs -= 1;
                self.bytes -= job.payload.len() as u64;
                return Some(job);
            }
        }
        None
    }
}

struct State {
    shards: Vec<Shard>,
    /// Retry lane: failed-elsewhere, rerouted, and CPU-fallback jobs,
    /// each possibly delayed by backoff.
    lane: VecDeque<Job>,
    buckets: HashMap<String, TenantBucket>,
    tenant_inflight: HashMap<String, usize>,
    /// Lifetime quota admissions / releases; at a drained quiescent
    /// point the two must be equal (the conservation invariant the
    /// proptests pin).
    admitted: u64,
    released: u64,
    /// Round-robin cursor breaking least-loaded ties at shard
    /// assignment.
    next_shard: usize,
    accepting: bool,
    /// Batches handed to workers whose jobs have not all resolved yet —
    /// they may still requeue onto the retry lane, so drain waits for
    /// them.
    active_batches: usize,
}

pub(crate) struct AdmissionQueue {
    depth_limit: usize,
    qos: QosConfig,
    has_cpu_workers: bool,
    health: Arc<HealthRegistry>,
    state: Mutex<State>,
    available: Condvar,
}

impl AdmissionQueue {
    pub fn new(
        depth_limit: usize,
        qos: QosConfig,
        shard_count: usize,
        has_cpu_workers: bool,
        health: Arc<HealthRegistry>,
    ) -> Self {
        let shard_count = shard_count.max(1);
        Self {
            depth_limit: depth_limit.max(1),
            qos,
            has_cpu_workers,
            health,
            state: Mutex::new(State {
                shards: (0..shard_count).map(|_| Shard::default()).collect(),
                lane: VecDeque::new(),
                buckets: HashMap::new(),
                tenant_inflight: HashMap::new(),
                admitted: 0,
                released: 0,
                next_shard: 0,
                accepting: true,
                active_batches: 0,
            }),
            available: Condvar::new(),
        }
    }

    /// Whether shard `index` maps to a device whose breaker is open
    /// (indices past the device count — the synthetic shard of a
    /// CPU-only pool — are never open).
    fn shard_open(&self, index: usize) -> bool {
        index < self.health.device_count() && self.health.state(index) == BreakerState::Open
    }

    /// Least-loaded shard by queued bytes, preferring shards whose
    /// breaker is not open (an open device still drains its own queue,
    /// but new work routes around it while a healthy alternative
    /// exists). Ties break round-robin so equal-size streams spread.
    fn pick_shard(&self, s: &mut State) -> usize {
        let n = s.shards.len();
        let cursor = s.next_shard;
        let weight = |i: usize| {
            let rotated = (i + n - cursor % n) % n;
            (self.shard_open(i), s.shards[i].bytes, s.shards[i].jobs, rotated)
        };
        let chosen = (0..n).min_by_key(|&i| weight(i)).expect("at least one shard");
        s.next_shard = (chosen + 1) % n;
        chosen
    }

    /// Admits `job` or refuses with a typed error. Admission costs the
    /// payload's size in the tenant's token bucket (checked before the
    /// global bound, charged only on success) and increments the
    /// tenant's in-flight count (released exactly once on final
    /// resolution).
    pub fn submit(&self, job: Job) -> Result<Admitted, SubmitError> {
        let now = Instant::now();
        let cost = (job.payload.len() as u64).max(1);
        let mut s = self.state.lock();
        if !s.accepting {
            return Err(SubmitError::ShuttingDown);
        }
        // Tenant throttle first (the refusal a tenant can fix by slowing
        // down), then the global bound.
        if let Some(rate) = self.qos.rate_bytes_per_sec {
            let burst = self.qos.burst_bytes;
            let bucket = s
                .buckets
                .entry(job.tenant.clone())
                .or_insert(TenantBucket { level: burst, refreshed: now });
            let dt = now.duration_since(bucket.refreshed).as_secs_f64();
            bucket.level = (bucket.level + rate * dt).min(burst);
            bucket.refreshed = now;
            let available = (bucket.level + self.qos.borrow_bytes).max(0.0);
            if (cost as f64) > available {
                return Err(SubmitError::TenantOverLimit {
                    tenant: job.tenant.clone(),
                    requested: cost,
                    available: available as u64,
                });
            }
        }
        let depth = s.shards.iter().map(|sh| sh.jobs).sum::<usize>() + s.lane.len();
        if depth >= self.depth_limit {
            return Err(SubmitError::Overloaded { depth, limit: self.depth_limit });
        }
        // Charge the bucket only once every check has passed.
        let mut borrowed = 0;
        if self.qos.rate_bytes_per_sec.is_some() {
            let bucket = s.buckets.get_mut(&job.tenant).expect("bucket created above");
            let debt_before = (-bucket.level).max(0.0);
            bucket.level -= cost as f64;
            let debt_after = (-bucket.level).max(0.0);
            borrowed = (debt_after - debt_before).max(0.0) as u64;
        }
        *s.tenant_inflight.entry(job.tenant.clone()).or_insert(0) += 1;
        s.admitted += 1;
        let shard = self.pick_shard(&mut s);
        s.shards[shard].push(job);
        drop(s);
        self.available.notify_all();
        Ok(Admitted { depth: depth + 1, shard, borrowed })
    }

    /// Re-enqueues an already-admitted job onto the retry lane. No
    /// admission check: the job's capacity was claimed at submit time.
    /// Routing (CPU pin, avoided devices, backoff delay) is read from
    /// the job itself at dequeue time.
    pub fn requeue(&self, job: Job) {
        self.state.lock().lane.push_back(job);
        self.available.notify_all();
    }

    /// Whether `class` may run a retry-lane `job` (ignoring backoff
    /// readiness). CPU workers own the CPU-pinned jobs; GPU workers take
    /// the rest, skipping devices the job must avoid — and degrade to
    /// hosting CPU-pinned jobs themselves only when the pool has no
    /// dedicated CPU workers.
    fn lane_serves(&self, class: WorkerClass, job: &Job) -> bool {
        match class {
            WorkerClass::Cpu => job.force_cpu,
            WorkerClass::Gpu { device } => {
                if job.force_cpu {
                    !self.has_cpu_workers
                } else {
                    !job.avoids(device)
                }
            }
        }
    }

    /// The shard `class` should pull from: its own when non-empty, else
    /// the deepest peer it may steal from (`true` marks a steal). An
    /// open-breaker device is never a steal target, and a worker whose
    /// own breaker is open never steals — it only drains its own
    /// backlog, which the denial path reroutes. CPU workers have no home
    /// and pull from the deepest shard unconditionally (not a steal).
    fn pick_source(&self, s: &State, class: WorkerClass) -> Option<(usize, bool)> {
        let deepest = |exclude: Option<usize>, skip_open: bool| {
            (0..s.shards.len())
                .filter(|&i| Some(i) != exclude && s.shards[i].jobs > 0)
                .filter(|&i| !skip_open || !self.shard_open(i))
                .max_by_key(|&i| (s.shards[i].jobs, s.shards[i].bytes))
        };
        match class {
            WorkerClass::Cpu => deepest(None, false).map(|i| (i, false)),
            WorkerClass::Gpu { device } => {
                let home = device.min(s.shards.len() - 1);
                if s.shards[home].jobs > 0 {
                    Some((home, false))
                } else if self.shard_open(home) {
                    None
                } else {
                    deepest(Some(home), true).map(|i| (i, true))
                }
            }
        }
    }

    /// Builds one batch window from `shard`: same-kind jobs in band/DRR
    /// order up to the job and byte caps, with already-expired jobs
    /// diverted aside (they cost no window slots and don't pin the
    /// window's kind).
    fn take_window(
        shard: &mut Shard,
        quantum: u64,
        max_jobs: usize,
        max_bytes: usize,
        now: Instant,
    ) -> (Vec<Job>, Vec<Job>) {
        let mut jobs: Vec<Job> = Vec::new();
        let mut expired = Vec::new();
        let mut kind = None;
        let mut bytes = 0usize;
        while jobs.len() < max_jobs && (jobs.is_empty() || bytes < max_bytes) {
            let Some(job) = shard.pop_matching(kind, quantum) else { break };
            if job.deadline.is_some_and(|d| now >= d) {
                expired.push(job);
                continue;
            }
            bytes += job.payload.len();
            kind = Some(job.kind);
            jobs.push(job);
        }
        (jobs, expired)
    }

    /// Blocks for the next window of same-kind jobs this worker class
    /// may serve; `None` once the service is shutting down and fully
    /// drained (including potential requeues from batches that are
    /// still executing). Backoff-delayed retries are never handed out
    /// early — a worker with nothing else to do sleeps until the
    /// earliest one ripens or the earliest lane deadline expires,
    /// whichever comes first, so a stalled window cannot sit on an
    /// expired job.
    pub fn next_batch(
        &self,
        class: WorkerClass,
        max_jobs: usize,
        max_bytes: usize,
    ) -> Option<Batch> {
        let max_jobs = max_jobs.max(1);
        let mut s = self.state.lock();
        loop {
            let now = Instant::now();
            if !s.lane.is_empty() {
                let mut taken: Vec<Job> = Vec::new();
                let mut expired: Vec<Job> = Vec::new();
                let mut rest = VecDeque::with_capacity(s.lane.len());
                let mut kind = None;
                let mut bytes = 0usize;
                for job in std::mem::take(&mut s.lane) {
                    // Deadline-expired retries resolve as misses no
                    // matter which class sees them first — even while
                    // still inside their backoff delay.
                    if job.deadline.is_some_and(|d| now >= d) {
                        expired.push(job);
                        continue;
                    }
                    let take = self.lane_serves(class, &job)
                        && job.ready_at(now)
                        && kind.is_none_or(|k| k == job.kind)
                        && taken.len() < max_jobs
                        && (taken.is_empty() || bytes < max_bytes);
                    if take {
                        bytes += job.payload.len();
                        kind = Some(job.kind);
                        taken.push(job);
                    } else {
                        rest.push_back(job);
                    }
                }
                s.lane = rest;
                if !taken.is_empty() || !expired.is_empty() {
                    s.active_batches += 1;
                    return Some(Batch {
                        jobs: taken,
                        expired,
                        stolen_from: None,
                        dequeued_at: Instant::now(),
                    });
                }
            }
            if let Some((index, stolen)) = self.pick_source(&s, class) {
                let (jobs, expired) = Self::take_window(
                    &mut s.shards[index],
                    self.qos.quantum_bytes,
                    max_jobs,
                    max_bytes,
                    now,
                );
                if !jobs.is_empty() || !expired.is_empty() {
                    s.active_batches += 1;
                    return Some(Batch {
                        jobs,
                        expired,
                        stolen_from: stolen.then_some(index),
                        dequeued_at: Instant::now(),
                    });
                }
            }
            if !s.accepting
                && s.lane.is_empty()
                && s.shards.iter().all(|sh| sh.jobs == 0)
                && s.active_batches == 0
            {
                return None;
            }
            // Nothing runnable. Sleep until the earliest wake-worthy
            // lane instant — a backoff ripening for this class, or any
            // lane job's deadline expiring (expiry resolution is not
            // class-restricted) — else wait for a notification.
            let ripens = s
                .lane
                .iter()
                .filter_map(|j| {
                    let backoff = j.not_before.filter(|_| self.lane_serves(class, j));
                    match (backoff, j.deadline) {
                        (Some(b), Some(d)) => Some(b.min(d)),
                        (Some(b), None) => Some(b),
                        (None, Some(d)) => Some(d),
                        (None, None) => None,
                    }
                })
                .min();
            match ripens {
                Some(t) => {
                    let timeout = t.saturating_duration_since(Instant::now());
                    if timeout.is_zero() {
                        continue;
                    }
                    let _ = self.available.wait_for(&mut s, timeout);
                }
                None => self.available.wait(&mut s),
            }
        }
    }

    /// Marks a batch handed out by [`Self::next_batch`] fully resolved.
    pub fn finish_batch(&self) {
        let mut s = self.state.lock();
        s.active_batches -= 1;
        drop(s);
        self.available.notify_all();
    }

    /// Releases one unit of `tenant`'s in-flight quota. Must fire
    /// exactly once per admitted job, on its final resolution path.
    pub fn release_tenant(&self, tenant: &str) {
        let mut s = self.state.lock();
        if let Some(n) = s.tenant_inflight.get_mut(tenant) {
            *n -= 1;
            if *n == 0 {
                s.tenant_inflight.remove(tenant);
            }
            s.released += 1;
        }
    }

    /// Stops admitting new jobs; queued and in-flight jobs still drain.
    pub fn begin_shutdown(&self) {
        self.state.lock().accepting = false;
        self.available.notify_all();
    }

    /// Jobs currently queued (not yet handed to a worker).
    pub fn depth(&self) -> usize {
        let s = self.state.lock();
        s.shards.iter().map(|sh| sh.jobs).sum::<usize>() + s.lane.len()
    }

    /// `tenant`'s admitted-but-unresolved job count.
    pub fn tenant_in_flight(&self, tenant: &str) -> usize {
        self.state.lock().tenant_inflight.get(tenant).copied().unwrap_or(0)
    }

    /// Lifetime `(admissions, releases, outstanding)` of the tenant
    /// quota — the conservation triple: at a drained quiescent point
    /// admissions equal releases and nothing is outstanding.
    pub fn quota_ledger(&self) -> (u64, u64, usize) {
        let s = self.state.lock();
        (s.admitted, s.released, s.tenant_inflight.values().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthConfig;
    use crate::job::{JobId, JobKind, JobResult, Priority};
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    const GPU0: WorkerClass = WorkerClass::Gpu { device: 0 };

    fn queue(depth: usize, shards: usize, has_cpu: bool) -> AdmissionQueue {
        AdmissionQueue::new(
            depth,
            QosConfig::default(),
            shards,
            has_cpu,
            Arc::new(HealthRegistry::new(HealthConfig::default(), shards)),
        )
    }

    /// Queue with a DRR quantum matching the 16-byte test payloads so
    /// each tenant turn serves exactly one job.
    fn fine_grained(depth: usize) -> AdmissionQueue {
        AdmissionQueue::new(
            depth,
            QosConfig { quantum_bytes: 16, ..QosConfig::default() },
            1,
            false,
            Arc::new(HealthRegistry::new(HealthConfig::default(), 1)),
        )
    }

    fn limited(depth: usize, rate: f64, burst: f64, borrow: f64) -> AdmissionQueue {
        AdmissionQueue::new(
            depth,
            QosConfig {
                rate_bytes_per_sec: Some(rate),
                burst_bytes: burst,
                borrow_bytes: borrow,
                quantum_bytes: 64,
            },
            1,
            false,
            Arc::new(HealthRegistry::new(HealthConfig::default(), 1)),
        )
    }

    fn job(
        id: u64,
        tenant: &str,
        kind: JobKind,
        priority: Priority,
    ) -> (Job, mpsc::Receiver<JobResult>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                id: JobId(id),
                tenant: tenant.into(),
                kind,
                payload: vec![0u8; 16],
                priority,
                accepted_at: Instant::now(),
                deadline: None,
                attempts: 0,
                force_cpu: false,
                not_before: None,
                avoid_devices: 0,
                responder: tx,
            },
            rx,
        )
    }

    #[test]
    fn priority_then_fifo_order() {
        let q = queue(16, 1, false);
        let mut keep = Vec::new();
        for (id, p) in
            [(0, Priority::Normal), (1, Priority::Low), (2, Priority::High), (3, Priority::Normal)]
        {
            let (j, rx) = job(id, "t", JobKind::Compress, p);
            keep.push(rx);
            q.submit(j).unwrap();
        }
        let order: Vec<u64> = (0..4)
            .map(|_| {
                let batch = q.next_batch(GPU0, 1, usize::MAX).unwrap();
                q.finish_batch();
                batch.jobs[0].id.0
            })
            .collect();
        assert_eq!(order, [2, 0, 3, 1]);
    }

    #[test]
    fn batches_coalesce_same_kind_only() {
        let q = queue(16, 1, false);
        let mut keep = Vec::new();
        for (id, kind) in [
            (0, JobKind::Compress),
            (1, JobKind::Compress),
            (2, JobKind::Decompress),
            (3, JobKind::Compress),
        ] {
            let (j, rx) = job(id, "t", kind, Priority::Normal);
            keep.push(rx);
            q.submit(j).unwrap();
        }
        let ids = |batch: Batch| batch.jobs.iter().map(|j| j.id.0).collect::<Vec<_>>();
        let b1 = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        q.finish_batch();
        assert_eq!(ids(b1), [0, 1]);
        let b2 = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        q.finish_batch();
        assert_eq!(ids(b2), [2]);
        let b3 = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        q.finish_batch();
        assert_eq!(ids(b3), [3]);
    }

    #[test]
    fn drr_interleaves_tenants_within_a_band() {
        // Tenant "hog" floods the band before "a" and "b" arrive; DRR
        // must still serve all three round-robin instead of draining the
        // hog's FIFO first.
        let q = fine_grained(64);
        let mut keep = Vec::new();
        let mut id = 0;
        for _ in 0..6 {
            let (j, rx) = job(id, "hog", JobKind::Compress, Priority::Normal);
            keep.push(rx);
            q.submit(j).unwrap();
            id += 1;
        }
        for tenant in ["a", "b"] {
            for _ in 0..2 {
                let (j, rx) = job(id, tenant, JobKind::Compress, Priority::Normal);
                keep.push(rx);
                q.submit(j).unwrap();
                id += 1;
            }
        }
        let mut tenants = Vec::new();
        for _ in 0..10 {
            let batch = q.next_batch(GPU0, 1, usize::MAX).unwrap();
            q.finish_batch();
            tenants.push(batch.jobs[0].tenant.clone());
        }
        // Both background tenants finish both jobs within the first six
        // dequeues (one full rotation serves each tenant once).
        let first_six = &tenants[..6];
        assert_eq!(first_six.iter().filter(|t| *t == "a").count(), 2, "{tenants:?}");
        assert_eq!(first_six.iter().filter(|t| *t == "b").count(), 2, "{tenants:?}");
        assert_eq!(tenants.iter().filter(|t| *t == "hog").count(), 6, "{tenants:?}");
    }

    #[test]
    fn typed_rejections() {
        let q = limited(2, 1.0, 16.0, 0.0);
        let (j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        q.submit(j0).unwrap();
        // Tenant throttle before queue bound: the 16-byte burst is
        // spent, the next 16-byte job does not fit the empty bucket.
        let (j1, _rx1) = job(1, "a", JobKind::Compress, Priority::Normal);
        assert!(matches!(q.submit(j1), Err(SubmitError::TenantOverLimit { requested: 16, .. })));
        let (j2, _rx2) = job(2, "b", JobKind::Compress, Priority::Normal);
        q.submit(j2).unwrap();
        let (j3, _rx3) = job(3, "c", JobKind::Compress, Priority::Normal);
        assert!(matches!(q.submit(j3), Err(SubmitError::Overloaded { depth: 2, limit: 2 })));
        q.begin_shutdown();
        let (j4, _rx4) = job(4, "d", JobKind::Compress, Priority::Normal);
        assert!(matches!(q.submit(j4), Err(SubmitError::ShuttingDown)));
    }

    #[test]
    fn token_bucket_borrows_then_throttles_then_refills() {
        // Burst covers one job; borrowing covers one more; the third is
        // refused until refill pays the debt down.
        let q = limited(64, 1600.0, 16.0, 16.0);
        let (j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        assert_eq!(q.submit(j0).unwrap().borrowed, 0);
        let (j1, _rx1) = job(1, "a", JobKind::Compress, Priority::Normal);
        let admitted = q.submit(j1).unwrap();
        assert!(admitted.borrowed > 0, "second job should borrow against refill");
        let (j2, _rx2) = job(2, "a", JobKind::Compress, Priority::Normal);
        assert!(matches!(q.submit(j2), Err(SubmitError::TenantOverLimit { .. })));
        // Another tenant is unaffected.
        let (j3, _rx3) = job(3, "b", JobKind::Compress, Priority::Normal);
        q.submit(j3).unwrap();
        // At 1600 B/s the 32-byte debt clears in ~20 ms.
        std::thread::sleep(Duration::from_millis(40));
        let (j4, _rx4) = job(4, "a", JobKind::Compress, Priority::Normal);
        q.submit(j4).unwrap();
    }

    #[test]
    fn tenant_quota_releases_on_resolution() {
        let q = queue(8, 1, false);
        let (j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        q.submit(j0).unwrap();
        assert_eq!(q.tenant_in_flight("a"), 1);
        // Popping does NOT release the quota — resolution does.
        let batch = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(q.tenant_in_flight("a"), 1);
        drop(batch);
        q.release_tenant("a");
        q.finish_batch();
        assert_eq!(q.tenant_in_flight("a"), 0);
        assert_eq!(q.quota_ledger(), (1, 1, 0));
        let (j1, _rx1) = job(1, "a", JobKind::Compress, Priority::Normal);
        q.submit(j1).unwrap();
    }

    #[test]
    fn shutdown_drains_then_returns_none() {
        let q = queue(8, 1, false);
        let (j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        q.submit(j0).unwrap();
        q.begin_shutdown();
        let batch = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(batch.jobs.len(), 1);
        // A still-active batch may requeue onto the retry lane, so drain
        // is not complete until it is finished.
        q.requeue(batch.jobs.into_iter().next().unwrap());
        q.finish_batch();
        let fallback = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(fallback.jobs.len(), 1);
        drop(fallback);
        q.finish_batch();
        assert!(q.next_batch(GPU0, 8, usize::MAX).is_none());
        assert!(q.next_batch(WorkerClass::Cpu, 8, usize::MAX).is_none());
    }

    #[test]
    fn cpu_pinned_retries_reserved_for_cpu_workers_when_present() {
        let q = queue(8, 1, true);
        let (mut j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        j0.force_cpu = true;
        q.requeue(j0);
        let (j1, _rx1) = job(1, "a", JobKind::Compress, Priority::Normal);
        q.submit(j1).unwrap();
        // The GPU worker sees only the freshly submitted job.
        let batch = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(batch.jobs[0].id.0, 1);
        q.finish_batch();
        // The CPU worker drains the pinned retry.
        let batch = q.next_batch(WorkerClass::Cpu, 8, usize::MAX).unwrap();
        assert_eq!(batch.jobs[0].id.0, 0);
        q.finish_batch();
    }

    #[test]
    fn retry_lane_honors_avoided_devices() {
        let q = queue(8, 2, false);
        let (mut j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        j0.mark_avoid(0);
        q.requeue(j0);
        let (j1, _rx1) = job(1, "a", JobKind::Compress, Priority::Normal);
        q.requeue(j1);
        // gpu0 must skip the job that failed there and take the other,
        // even though the avoided job is ahead of it in the lane.
        let batch = q.next_batch(GPU0, 1, usize::MAX).unwrap();
        assert_eq!(batch.jobs[0].id.0, 1);
        q.finish_batch();
        // gpu1 serves the job gpu0 could not.
        let batch = q.next_batch(WorkerClass::Gpu { device: 1 }, 1, usize::MAX).unwrap();
        assert_eq!(batch.jobs[0].id.0, 0);
        q.finish_batch();
    }

    #[test]
    fn backoff_delays_dequeue_until_ready() {
        let q = queue(8, 1, false);
        let (mut j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        let delay = Duration::from_millis(30);
        j0.not_before = Some(Instant::now() + delay);
        let started = Instant::now();
        q.requeue(j0);
        let batch = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(batch.jobs[0].id.0, 0);
        assert!(
            started.elapsed() >= delay - Duration::from_millis(2),
            "dequeued {:?} after requeue, before the {delay:?} backoff",
            started.elapsed()
        );
        q.finish_batch();
    }

    #[test]
    fn idle_worker_steals_from_the_deepest_peer() {
        let q = queue(32, 2, false);
        let mut keep = Vec::new();
        // Load both shards (least-loaded assignment alternates), then
        // drain shard 0 so gpu0 goes idle while shard 1 still has work.
        for id in 0..6 {
            let (j, rx) = job(id, "t", JobKind::Compress, Priority::Normal);
            keep.push(rx);
            q.submit(j).unwrap();
        }
        // gpu0 serves its home shard first (3 of the 6 jobs)...
        let home = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(home.stolen_from, None);
        assert_eq!(home.jobs.len(), 3);
        q.finish_batch();
        // ...then steals the remaining window from shard 1.
        let stolen = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(stolen.stolen_from, Some(1));
        assert_eq!(stolen.jobs.len(), 3);
        q.finish_batch();
    }

    #[test]
    fn open_breaker_shards_are_not_steal_targets() {
        let health = Arc::new(HealthRegistry::new(
            HealthConfig { failure_threshold: 1, ..HealthConfig::default() },
            2,
        ));
        let q = AdmissionQueue::new(32, QosConfig::default(), 2, false, Arc::clone(&health));
        // Trip device 1's breaker open.
        health.on_failure(1, false, false, Instant::now());
        assert_eq!(health.state(1), BreakerState::Open);
        let mut keep = Vec::new();
        for id in 0..4 {
            let (j, rx) = job(id, "t", JobKind::Compress, Priority::Normal);
            keep.push(rx);
            q.submit(j).unwrap();
        }
        // With device 1 open, submissions all routed to shard 0; gpu0
        // drains them as home work and gpu1 (open) must not steal.
        let batch = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(batch.stolen_from, None);
        assert_eq!(batch.jobs.len(), 4);
        q.finish_batch();
    }

    #[test]
    fn expired_jobs_divert_at_batch_build_time() {
        let q = queue(8, 1, false);
        let (mut j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        j0.deadline = Some(Instant::now() - Duration::from_millis(1));
        let (j1, _rx1) = job(1, "a", JobKind::Compress, Priority::Normal);
        q.submit(j0).unwrap();
        q.submit(j1).unwrap();
        let batch = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert_eq!(batch.jobs.len(), 1);
        assert_eq!(batch.jobs[0].id.0, 1);
        assert_eq!(batch.expired.len(), 1);
        assert_eq!(batch.expired[0].id.0, 0);
        q.finish_batch();
    }

    #[test]
    fn stalled_coalescer_surfaces_expired_retry_at_its_deadline() {
        // A retry deep in backoff whose deadline expires first: the
        // sleeping worker must wake at the deadline (not the backoff)
        // and hand the job back as expired instead of executing it late.
        let q = queue(8, 1, false);
        let (mut j0, _rx0) = job(0, "a", JobKind::Compress, Priority::Normal);
        j0.not_before = Some(Instant::now() + Duration::from_secs(10));
        let deadline = Duration::from_millis(30);
        j0.deadline = Some(Instant::now() + deadline);
        let started = Instant::now();
        q.requeue(j0);
        let batch = q.next_batch(GPU0, 8, usize::MAX).unwrap();
        assert!(batch.jobs.is_empty());
        assert_eq!(batch.expired.len(), 1);
        let waited = started.elapsed();
        assert!(waited >= deadline - Duration::from_millis(2), "woke after {waited:?}");
        assert!(waited < Duration::from_secs(5), "slept into the backoff: {waited:?}");
        q.finish_batch();
    }
}
