//! Worker loops: pull batch windows from the admission queue, execute
//! them on a simulated device or the host CPU, route device failures
//! through per-device circuit breakers, health-aware retries with
//! exponential backoff, and the CPU-fallback lane, and resolve tickets.
//!
//! The failure-domain rules (see `DESIGN.md` §16):
//!
//! * Every GPU execution first asks the device's circuit breaker for
//!   admission. An open breaker denies the job, which is rerouted —
//!   *without* consuming retry budget — to another healthy device, or
//!   to the CPU lane when none remains.
//! * A device failure consumes one retry, marks the device as avoided
//!   for that job, applies jittered exponential backoff, and prefers a
//!   different healthy GPU over the CPU lane (failover before
//!   degradation).
//! * A failure whose attempt ran at least the watchdog deadline is
//!   classified as a hang; exhausted budgets then resolve as
//!   [`JobError::DeviceTimeout`] instead of [`JobError::DeviceFailed`].
//! * Verify-on-deliver failures stay pinned to the trusted CPU lane
//!   (`force_cpu`), as before — bad bytes are a reason to leave the
//!   device class entirely, not to shop for another GPU.

use std::time::{Duration, Instant};

use culzss::hetero;
use culzss::pipeline::StageTimes;
use culzss::stream::BatchTimeline;
use culzss::{Culzss, CulzssError};
use culzss_dedup::DedupReport;
use culzss_gpusim::trace::Timeline;

use crate::batch::BatchReport;
use crate::health::{retry_backoff, Admission};
use crate::job::{EngineKind, Job, JobError, JobOutcome};
use crate::queue::{Batch, WorkerClass};
use crate::service::Shared;
use crate::tracing::{BATCH_PID, SERVICE_PID};

/// The engine a worker thread drives.
pub(crate) enum WorkerEngine {
    Gpu { culzss: Box<Culzss>, device: usize },
    Cpu { threads: usize },
}

impl WorkerEngine {
    fn class(&self) -> WorkerClass {
        match self {
            WorkerEngine::Gpu { device, .. } => WorkerClass::Gpu { device: *device },
            WorkerEngine::Cpu { .. } => WorkerClass::Cpu,
        }
    }

    fn kind(&self) -> EngineKind {
        match self {
            WorkerEngine::Gpu { device, .. } => EngineKind::Gpu { device: *device },
            WorkerEngine::Cpu { .. } => EngineKind::Cpu,
        }
    }
}

/// Worker thread body: serve batch windows until shutdown drains.
pub(crate) fn run(shared: &Shared, engine: WorkerEngine) {
    let class = engine.class();
    while let Some(batch) = shared.queue.next_batch(class, shared.batch_jobs, shared.batch_bytes) {
        execute_batch(shared, &engine, batch);
        shared.queue.finish_batch();
    }
}

fn execute_batch(shared: &Shared, engine: &WorkerEngine, batch: Batch) {
    let Batch { jobs, expired, stolen_from, dequeued_at } = batch;
    // Deadline misses detected at batch-build time resolve typed,
    // without execution — a job that expired while its window was being
    // coalesced must not run late.
    for job in expired {
        let now = Instant::now();
        let missed_by = job.deadline.map_or(Duration::ZERO, |d| now.saturating_duration_since(d));
        shared.trace.host_span(
            "queue_wait",
            SERVICE_PID,
            job.id.0,
            job.accepted_at,
            dequeued_at,
            vec![("tenant".into(), job.tenant.clone())],
        );
        resolve_err(shared, job, JobError::DeadlineMissed { missed_by });
    }
    if jobs.is_empty() {
        return;
    }
    let batch_id = shared.next_batch_id();
    let kind = jobs[0].kind;
    let job_count = jobs.len();
    let bytes_in: u64 = jobs.iter().map(|j| j.payload.len() as u64).sum();
    if let Some(victim) = stolen_from {
        shared.stats.on_steal(job_count as u64, bytes_in);
        let thief = match engine {
            WorkerEngine::Gpu { device, .. } => format!("gpu{device}"),
            WorkerEngine::Cpu { .. } => "cpu".into(),
        };
        shared.trace.qos_event(
            &format!("steal:gpu{victim}->{thief}"),
            victim,
            &[("jobs", job_count.to_string()), ("bytes", bytes_in.to_string())],
        );
    }
    let mut timeline = BatchTimeline::new();

    for job in jobs {
        if let Some(requeued) = run_job(shared, engine, job, batch_id, dequeued_at, &mut timeline) {
            shared.queue.requeue(requeued);
        }
    }

    shared.trace.host_span(
        "batch",
        BATCH_PID,
        batch_id,
        dequeued_at,
        Instant::now(),
        vec![
            ("kind".into(), format!("{kind:?}")),
            ("engine".into(), format!("{:?}", engine.kind())),
            ("jobs".into(), job_count.to_string()),
            ("bytes_in".into(), bytes_in.to_string()),
        ],
    );
    shared.stats.on_batch(BatchReport {
        batch_id,
        kind,
        engine: engine.kind(),
        jobs: job_count,
        bytes_in,
        sequential_seconds: timeline.sequential_seconds(),
        pipelined_seconds: timeline.pipelined_seconds(),
    });
}

/// Executes (or fails) one job; `Some(job)` means "requeue onto the
/// retry lane" (the job's routing fields say where it may run next).
fn run_job(
    shared: &Shared,
    engine: &WorkerEngine,
    mut job: Job,
    batch_id: u64,
    dequeued_at: Instant,
    timeline: &mut BatchTimeline,
) -> Option<Job> {
    // Queue wait ends when the batch left the queue — NOT at each job's
    // own service start, which would fold earlier batch-mates' service
    // time into later jobs' reported wait.
    let queued_seconds = dequeued_at.duration_since(job.accepted_at).as_secs_f64();
    shared.trace.host_span(
        "queue_wait",
        SERVICE_PID,
        job.id.0,
        job.accepted_at,
        dequeued_at,
        vec![("tenant".into(), job.tenant.clone())],
    );
    let now = Instant::now();
    if let Some(deadline) = job.deadline {
        if now >= deadline {
            let missed_by = now.duration_since(deadline);
            resolve_err(shared, job, JobError::DeadlineMissed { missed_by });
            return None;
        }
    }

    let cpu_threads = match engine {
        WorkerEngine::Cpu { threads } => Some(*threads),
        // A GPU worker degrades to the host path for fallback-lane jobs
        // it picked up (pool without dedicated CPU workers).
        WorkerEngine::Gpu { .. } if job.force_cpu => Some(shared.cpu_threads),
        WorkerEngine::Gpu { .. } => None,
    };

    match cpu_threads {
        Some(threads) => {
            let started = Instant::now();
            let result = match job.kind {
                crate::job::JobKind::Compress => match &shared.dedup {
                    Some(dedup) => {
                        dedup.compress_cpu(&job.payload, threads).map(|(out, report)| {
                            cache_span(shared, job.id.0, started, &report);
                            out
                        })
                    }
                    None => hetero::cpu_compress(&job.payload, &shared.params, threads),
                },
                crate::job::JobKind::Decompress => hetero::cpu_decompress(&job.payload, threads),
            };
            let service_seconds = started.elapsed().as_secs_f64();
            shared.trace.host_span(
                "execute",
                SERVICE_PID,
                job.id.0,
                started,
                Instant::now(),
                vec![("engine".into(), "cpu".into())],
            );
            match result {
                Ok(output) => {
                    timeline.push_stages(StageTimes { cpu: service_seconds, ..Default::default() });
                    deliver(
                        shared,
                        job,
                        output,
                        EngineKind::Cpu,
                        batch_id,
                        queued_seconds,
                        service_seconds,
                    )
                }
                Err(e) => {
                    resolve_err(shared, job, JobError::Codec { error: e.to_string() });
                    None
                }
            }
        }
        None => {
            let WorkerEngine::Gpu { culzss, device } = engine else {
                unreachable!("cpu_threads is None only for GPU engines");
            };
            // Circuit-breaker gate. A denial reroutes the job without
            // consuming its retry budget: the breaker is protecting the
            // job *from* a sick device, not blaming it.
            let (admission, transition) = shared.health.try_acquire(*device, Instant::now());
            shared.note_breaker(transition);
            let probe = match admission {
                Admission::Execute { probe } => probe,
                Admission::Deny => {
                    shared.stats.on_breaker_denied();
                    job.mark_avoid(*device);
                    if !shared.health.healthy_device_besides(job.avoid_devices) {
                        job.force_cpu = true;
                    }
                    return Some(job);
                }
            };
            let started = Instant::now();
            let result = if shared.fault.should_fail() {
                Err(CulzssError::InvalidParams(format!("injected device failure on gpu{device}")))
            } else {
                match job.kind {
                    crate::job::JobKind::Compress => match &shared.dedup {
                        // The dedup front end launches the kernel once
                        // per miss segment (not at all on a full hit),
                        // so there is no single launch breakdown to
                        // trace; the cache span carries the story.
                        Some(dedup) => {
                            dedup.compress_gpu(culzss, &job.payload).map(|(out, report)| {
                                cache_span(shared, job.id.0, started, &report);
                                (out, None)
                            })
                        }
                        None => {
                            culzss.compress(&job.payload).map(|(out, stats)| (out, Some(stats)))
                        }
                    },
                    crate::job::JobKind::Decompress => {
                        culzss.decompress_auto(&job.payload).map(|(out, stats)| (out, Some(stats)))
                    }
                }
            };
            let elapsed = started.elapsed();
            let service_seconds = elapsed.as_secs_f64();
            shared.trace.host_span(
                "execute",
                SERVICE_PID,
                job.id.0,
                started,
                Instant::now(),
                vec![("engine".into(), format!("gpu{device}"))],
            );
            match result {
                Ok((output, stats)) => {
                    shared.note_breaker(shared.health.on_success(*device, probe));
                    // Nest the cost model's stage breakdown under the
                    // execute span, and anchor the launch's per-SM block
                    // spans at the kernel stage's start, linking this
                    // job's host timeline to its device timeline.
                    if let Some(stats) = &stats {
                        let kernel_name = match job.kind {
                            crate::job::JobKind::Compress => "compress",
                            crate::job::JobKind::Decompress => "decompress",
                        };
                        let mut at_us = shared.trace.instant_us(started);
                        for (stage, seconds) in [
                            ("h2d", stats.h2d_seconds),
                            ("kernel", stats.kernel_seconds),
                            ("d2h", stats.d2h_seconds),
                            ("cpu", stats.cpu_seconds),
                        ] {
                            shared.trace.modelled_span(stage, job.id.0, at_us, seconds);
                            if stage == "kernel" {
                                if let Some(launch) = &stats.launch {
                                    let block_timeline = Timeline::from_launch(
                                        culzss.device(),
                                        launch.block_dim,
                                        launch.shared_bytes,
                                        &launch.per_block,
                                    );
                                    shared.trace.block_spans(
                                        *device,
                                        &block_timeline,
                                        kernel_name,
                                        at_us,
                                    );
                                }
                            }
                            at_us += seconds * 1e6;
                        }
                        shared.stats.on_modeled_stages(
                            stats.h2d_seconds,
                            stats.kernel_seconds,
                            stats.d2h_seconds,
                            stats.cpu_seconds,
                        );
                        timeline.push(stats);
                    } else {
                        // Dedup-path job: the work was host-side cache
                        // serving plus per-segment launches, already in
                        // the wall clock; account it as one CPU stage.
                        timeline
                            .push_stages(StageTimes { cpu: service_seconds, ..Default::default() });
                    }
                    deliver(
                        shared,
                        job,
                        output,
                        EngineKind::Gpu { device: *device },
                        batch_id,
                        queued_seconds,
                        service_seconds,
                    )
                }
                // Codec errors (corrupt container, …) are the payload's
                // fault; retrying on another engine cannot help. The
                // device itself executed, so the breaker hears a
                // success (and a probe slot, if held, is released).
                Err(CulzssError::Codec(e)) => {
                    shared.note_breaker(shared.health.on_success(*device, probe));
                    resolve_err(shared, job, JobError::Codec { error: e.to_string() });
                    None
                }
                Err(e) => {
                    // Watchdog: an attempt that ran at least the
                    // deadline before failing was a hang the driver had
                    // to kill, not a fast launch error.
                    let watchdog = shared.health.config().watchdog;
                    let timed_out = watchdog.is_some_and(|w| elapsed >= w);
                    shared.stats.on_device_failure();
                    if timed_out {
                        shared.stats.on_device_timeout();
                    }
                    shared.note_breaker(shared.health.on_failure(
                        *device,
                        probe,
                        timed_out,
                        Instant::now(),
                    ));
                    if job.attempts < shared.max_retries {
                        job.attempts += 1;
                        job.mark_avoid(*device);
                        // Failover routing: prefer a different healthy
                        // GPU; degrade to the CPU lane only when none
                        // remains.
                        if !shared.health.healthy_device_besides(job.avoid_devices) {
                            job.force_cpu = true;
                        }
                        apply_backoff(shared, &mut job);
                        shared.stats.on_retried();
                        Some(job)
                    } else {
                        let attempts = job.attempts + 1;
                        let error = match (timed_out, watchdog) {
                            (true, Some(watchdog)) => {
                                JobError::DeviceTimeout { attempts, elapsed, watchdog }
                            }
                            _ => JobError::DeviceFailed { attempts, error: e.to_string() },
                        };
                        resolve_err(shared, job, error);
                        None
                    }
                }
            }
        }
    }
}

/// Sets the retry's jittered exponential backoff. The wake-up is capped
/// at the job's deadline: a retry that cannot run before its deadline
/// ripens exactly then and resolves as [`JobError::DeadlineMissed`] at
/// dequeue instead of executing arbitrarily late.
fn apply_backoff(shared: &Shared, job: &mut Job) {
    let delay = retry_backoff(shared.health.config(), job.id.0, job.attempts);
    let mut at = Instant::now() + delay;
    if let Some(deadline) = job.deadline {
        at = at.min(deadline);
    }
    job.not_before = Some(at);
    shared.stats.on_backoff();
}

/// Post-compress integrity gate, then resolution. Compressed outputs
/// pass through the fault plan's corruption hook and (when enabled) a
/// decompress-and-compare proof before the ticket resolves, so
/// corrupted bytes are discarded — never returned. A failed proof
/// consumes the retry budget like a device failure and pins the retry
/// to the trusted CPU lane (`Some(job)` means "requeue"); exhausting
/// the budget quarantines the job.
/// Decompressed outputs are already proven by the container's checksums
/// during decode and skip the gate.
fn deliver(
    shared: &Shared,
    mut job: Job,
    mut output: Vec<u8>,
    engine: EngineKind,
    batch_id: u64,
    queued_seconds: f64,
    service_seconds: f64,
) -> Option<Job> {
    let mut verify_seconds = 0.0;
    if job.kind == crate::job::JobKind::Compress {
        shared.fault.corrupt_payload(&mut output);
        if shared.verify_outputs {
            let started = Instant::now();
            let checked = roundtrip_check(shared, &job.payload, &output);
            verify_seconds = started.elapsed().as_secs_f64();
            shared.trace.host_span(
                "verify",
                SERVICE_PID,
                job.id.0,
                started,
                Instant::now(),
                vec![("ok".into(), checked.is_ok().to_string())],
            );
            if let Err(detail) = checked {
                shared.stats.on_integrity_failure(&job.tenant);
                if job.attempts < shared.max_retries {
                    job.attempts += 1;
                    job.force_cpu = true;
                    apply_backoff(shared, &mut job);
                    shared.stats.on_retried();
                    return Some(job);
                }
                let attempts = job.attempts + 1;
                resolve_err(shared, job, JobError::Quarantined { attempts, detail });
                return None;
            }
        }
    }
    resolve_ok(
        shared,
        job,
        output,
        engine,
        batch_id,
        queued_seconds,
        service_seconds,
        verify_seconds,
    );
    None
}

/// Records the dedup front end's per-job outcome as a `cache` span in
/// the job's service lane, next to its queue_wait/execute/verify spans.
fn cache_span(shared: &Shared, job_id: u64, started: Instant, report: &DedupReport) {
    shared.trace.host_span(
        "cache",
        SERVICE_PID,
        job_id,
        started,
        Instant::now(),
        vec![
            ("segments".into(), report.segments.to_string()),
            ("hits".into(), report.hit_segments.to_string()),
            ("misses".into(), report.miss_segments.to_string()),
            ("bytes_from_cache".into(), report.bytes_from_cache.to_string()),
        ],
    );
}

/// Proves `output` decodes back to `input` on the host.
fn roundtrip_check(shared: &Shared, input: &[u8], output: &[u8]) -> Result<(), String> {
    match hetero::cpu_decompress(output, shared.cpu_threads) {
        Ok(back) if back == input => Ok(()),
        Ok(back) => Err(format!(
            "round-trip mismatch: decoded {} byte(s), expected {}",
            back.len(),
            input.len()
        )),
        Err(e) => Err(e.to_string()),
    }
}

#[allow(clippy::too_many_arguments)]
fn resolve_ok(
    shared: &Shared,
    job: Job,
    output: Vec<u8>,
    engine: EngineKind,
    batch_id: u64,
    queued_seconds: f64,
    service_seconds: f64,
    verify_seconds: f64,
) {
    let latency = job.accepted_at.elapsed().as_secs_f64();
    shared.trace.host_span(
        "request",
        SERVICE_PID,
        job.id.0,
        job.accepted_at,
        Instant::now(),
        vec![
            ("tenant".into(), job.tenant.clone()),
            ("kind".into(), format!("{:?}", job.kind)),
            ("engine".into(), format!("{engine:?}")),
            ("batch".into(), batch_id.to_string()),
            ("retries".into(), job.attempts.to_string()),
        ],
    );
    shared.stats.on_stage_seconds(queued_seconds, service_seconds, verify_seconds);
    shared.stats.on_completed(
        &job.tenant,
        engine,
        job.attempts,
        job.payload.len() as u64,
        output.len() as u64,
        latency,
    );
    shared.queue.release_tenant(&job.tenant);
    let outcome = JobOutcome {
        id: job.id,
        tenant: job.tenant,
        kind: job.kind,
        output,
        engine,
        retries: job.attempts,
        batch_id,
        queued_seconds,
        service_seconds,
    };
    let _ = job.responder.send(Ok(outcome));
}

fn resolve_err(shared: &Shared, job: Job, error: JobError) {
    shared.trace.host_span(
        "request",
        SERVICE_PID,
        job.id.0,
        job.accepted_at,
        Instant::now(),
        vec![("tenant".into(), job.tenant.clone()), ("error".into(), error.to_string())],
    );
    shared.stats.on_failed(&error);
    shared.queue.release_tenant(&job.tenant);
    let _ = job.responder.send(Err(error));
}
