//! Content-addressed chunk cache and dedup front end for the CULZSS
//! compression service.
//!
//! The paper's pipeline recompresses every byte of every request; real
//! served traffic (the ROADMAP's incremental-backup scenario) is
//! dominated by repeated or slightly-edited payloads. This crate puts a
//! dedup layer in front of the engines:
//!
//! * [`chunker::Chunker`] — gear-hash content-defined chunking with
//!   min/avg/max bounds, boundaries aligned to the container chunk grid
//!   so cached output stays byte-valid;
//! * [`cache::ChunkCache`] — a bounded, sharded, SHA-256-keyed LRU of
//!   compressed segment bodies with byte-budget eviction;
//! * [`compressor::DedupCompressor`] — chunks the input, serves hits
//!   from cache, compresses misses through the existing engines, and
//!   assembles a container v2 stream byte-identical to a cache-off run.
//!
//! The hot case — a payload whose segments are all cached — skips the
//! (simulated) GPU entirely: it costs one SHA-256 pass, table
//! rebuilding, and a payload memcpy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chunker;
pub mod compressor;
pub mod hash;

pub use cache::{CacheStats, CachedSegment, ChunkCache};
pub use chunker::Chunker;
pub use compressor::{
    cpu_segment_encoder, gpu_segment_encoder, split_stream_bodies, DedupCompressor, DedupReport,
};
pub use hash::{sha256, Digest, Sha256};

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
    use std::sync::Arc;

    use culzss::{hetero, Culzss, CulzssParams, Version};
    use culzss_datasets::Dataset;

    use super::*;

    fn front_end(params: &CulzssParams, budget: usize) -> DedupCompressor {
        DedupCompressor::new(Arc::new(ChunkCache::new(budget)), params.clone())
    }

    #[test]
    fn cache_on_output_is_byte_identical_to_the_engine() {
        let params = CulzssParams::v1();
        let input = Dataset::CFiles.generate(256 * 1024, 2011);
        let engine = hetero::cpu_compress(&input, &params, 2).unwrap();

        let dedup = front_end(&params, 64 << 20);
        // Cold pass (all misses) and warm pass (all hits) both match.
        let (cold, cold_report) = dedup.compress_cpu(&input, 2).unwrap();
        assert_eq!(cold, engine, "cold dedup stream differs from the engine stream");
        assert_eq!(cold_report.hit_segments, 0);
        let (warm, warm_report) = dedup.compress_cpu(&input, 2).unwrap();
        assert_eq!(warm, engine, "warm dedup stream differs from the engine stream");
        assert_eq!(warm_report.miss_segments, 0);
        assert_eq!(warm_report.hit_rate(), 1.0);
        assert_eq!(warm_report.bytes_from_cache, input.len());
    }

    #[test]
    fn gpu_encoders_match_too_for_both_versions() {
        for version in [Version::V1, Version::V2] {
            let culzss = Culzss::new(version).with_workers(2);
            let input = Dataset::DeMap.generate(96 * 1024, 7);
            let (engine_stream, _) = culzss.compress(&input).unwrap();
            let dedup = front_end(culzss.params(), 64 << 20);
            let (stream, _) = dedup.compress_gpu(&culzss, &input).unwrap();
            assert_eq!(stream, engine_stream, "{version:?} dedup stream differs");
            // And the cached (hit) path reproduces it again.
            let (again, report) = dedup.compress_gpu(&culzss, &input).unwrap();
            assert_eq!(again, engine_stream);
            assert_eq!(report.miss_segments, 0);
        }
    }

    #[test]
    fn warm_runs_skip_the_encoder_for_unchanged_segments() {
        let params = CulzssParams::v1();
        // Several segments' worth of input (max segment is 32 grid
        // chunks = 128 KiB), so an edit leaves most segments cached.
        let input = Dataset::KernelTarball.generate(512 * 1024, 3);
        let dedup = front_end(&params, 64 << 20);
        let calls = AtomicUsize::new(0);
        let encode = |seg: &[u8]| {
            calls.fetch_add(1, Relaxed);
            Ok(hetero::cpu_compress_bodies(seg, &params, 1))
        };
        let (first, _) = dedup.compress_with(&input, encode).unwrap();
        let cold_calls = calls.load(Relaxed);
        assert!(cold_calls > 0);

        // Edit one byte: only the segment holding it (± a boundary
        // neighbour) recompresses.
        let mut edited = input.clone();
        edited[256 * 1024] ^= 0x11;
        let (second, report) = dedup
            .compress_with(&edited, |seg: &[u8]| {
                calls.fetch_add(1, Relaxed);
                Ok(hetero::cpu_compress_bodies(seg, &params, 1))
            })
            .unwrap();
        let warm_calls = calls.load(Relaxed) - cold_calls;
        assert!(
            warm_calls <= 3,
            "one-byte edit recompressed {warm_calls} of {} segments",
            report.segments
        );
        assert!(report.hit_segments > 0);

        // Both outputs decode correctly through the plain engine.
        assert_eq!(hetero::cpu_decompress(&first, 2).unwrap(), input);
        assert_eq!(hetero::cpu_decompress(&second, 2).unwrap(), edited);
    }

    #[test]
    fn edge_sizes_roundtrip() {
        let params = CulzssParams::v1();
        let chunk = params.chunk_size;
        let dedup = front_end(&params, 1 << 20);
        for size in [0usize, 1, chunk - 1, chunk, chunk + 1, 9 * chunk + 17] {
            let input = Dataset::HighlyCompressible.generate(size, 5);
            let (stream, report) = dedup.compress_cpu(&input, 1).unwrap();
            let engine = hetero::cpu_compress(&input, &params, 1).unwrap();
            assert_eq!(stream, engine, "size {size}");
            assert_eq!(report.raw_bytes, size);
            assert_eq!(hetero::cpu_decompress(&stream, 1).unwrap(), input, "size {size}");
        }
    }

    #[test]
    fn eviction_degrades_to_recompression_not_corruption() {
        let params = CulzssParams::v1();
        // A budget far below the corpus size: constant eviction churn.
        let dedup = front_end(&params, 16 * 1024);
        for seed in 0..4 {
            let input = Dataset::CFiles.generate(64 * 1024, seed);
            let engine = hetero::cpu_compress(&input, &params, 1).unwrap();
            let (stream, _) = dedup.compress_cpu(&input, 1).unwrap();
            assert_eq!(stream, engine, "seed {seed}");
        }
        let stats = dedup.cache().stats();
        assert!(
            stats.evictions > 0 || stats.insertions < stats.misses,
            "tiny budget produced no eviction pressure: {stats:?}"
        );
    }
}
