//! SHA-256, the strong content hash keying the chunk cache.
//!
//! A dedup cache must never serve the wrong bytes for a key, so the key
//! has to be a collision-resistant digest of the raw chunk — the
//! CRC-32s the container format uses elsewhere detect corruption but
//! collide trivially. The workspace builds offline with no registry
//! access, so this is a from-scratch FIPS 180-4 implementation, pinned
//! by the standard NIST test vectors below.

/// A 256-bit content digest; the cache key type.
pub type Digest = [u8; 32];

/// Round constants: fractional parts of the cube roots of the first 64
/// primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: fractional parts of the square roots of the
/// first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 state.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partially filled block awaiting the next 64-byte boundary.
    block: [u8; 64],
    block_len: usize,
    /// Total message bytes fed so far.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hash state.
    pub fn new() -> Self {
        Self { state: H0, block: [0u8; 64], block_len: 0, total_len: 0 }
    }

    /// Feeds message bytes.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.total_len = self.total_len.wrapping_add(bytes.len() as u64);
        if self.block_len > 0 {
            let take = bytes.len().min(64 - self.block_len);
            self.block[self.block_len..self.block_len + take].copy_from_slice(&bytes[..take]);
            self.block_len += take;
            bytes = &bytes[take..];
            if self.block_len == 64 {
                let block = self.block;
                self.compress(&block);
                self.block_len = 0;
            } else {
                // `bytes` is exhausted and the partial block stays as
                // is; falling through would clobber `block_len`.
                return;
            }
        }
        let mut chunks = bytes.chunks_exact(64);
        for block in &mut chunks {
            let block: &[u8; 64] = block.try_into().expect("exact chunk");
            self.compress(block);
        }
        let rest = chunks.remainder();
        self.block[..rest.len()].copy_from_slice(rest);
        self.block_len = rest.len();
    }

    /// Pads and returns the final digest.
    pub fn finish(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.block_len != 56 {
            self.update(&[0x00]);
        }
        // The length update above must not count the padding itself.
        let mut block = self.block;
        block[56..].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One compression round over a 64-byte block (FIPS 180-4 §6.2.2).
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, word) in w.iter_mut().enumerate().take(16) {
            *word = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot digest of a buffer.
pub fn sha256(bytes: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn nist_vectors() {
        // FIPS 180-4 / NIST CAVP short-message vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a's — the classic long-message vector.
        let million = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&sha256(&million)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_equals_one_shot_at_every_split() {
        let data: Vec<u8> = (0u32..300).map(|i| (i * 31 % 256) as u8).collect();
        let reference = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 299, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), reference, "split at {split}");
        }
    }

    #[test]
    fn distinct_inputs_give_distinct_digests() {
        assert_ne!(sha256(b"chunk A"), sha256(b"chunk B"));
        assert_ne!(sha256(b"ab"), sha256(b"a"));
    }
}
