//! Content-defined chunking with a gear-style rolling hash, aligned to
//! the container chunk grid.
//!
//! Fixed-size chunking has the classic weakness the dedup literature
//! starts from: one insertion near the front of an input shifts every
//! downstream chunk boundary, so nothing after the edit ever hits the
//! cache again. Content-defined chunking (CDC) cuts where the *content*
//! says to — a rolling hash over the last [`GEAR_WINDOW`] bytes decides
//! each boundary — so boundaries re-synchronize after an edit.
//!
//! One constraint is ours, not the literature's: the CLZC container
//! mandates a rigid chunk grid (every chunk except the last is exactly
//! `chunk_size` uncompressed bytes), and the dedup path must emit
//! byte-valid containers that every existing decoder reads unchanged.
//! So boundaries are only *tested* at multiples of [`Chunker::align`]
//! (the engine's container chunk size): each segment is a whole number
//! of container chunks, its compressed bodies slot into the grid at any
//! position, and cache hits reproduce the cache-off stream byte for
//! byte. The trade-off is honest: re-synchronization works for edits
//! and aligned insertions/deletions; an insertion that is not a
//! multiple of the grid shifts the grid itself, which no byte-valid
//! cache front end could survive.
//!
//! The cut decision at a candidate boundary depends only on the
//! [`GEAR_WINDOW`] bytes immediately before it, so an edit perturbs at
//! most the segment it lands in (plus a neighbour when it touches a
//! window); everything else keeps its boundaries and its cache keys.

use std::ops::Range;

/// Bytes of context feeding each boundary decision. The gear hash
/// shifts one bit per byte, so a 64-bit accumulator forgets anything
/// older than 64 bytes — the window is exactly the accumulator width.
pub const GEAR_WINDOW: usize = 64;

/// Gear table: one pseudo-random 64-bit constant per byte value,
/// generated deterministically (splitmix64) so chunk boundaries — and
/// therefore cache keys — are stable across builds and machines.
fn gear(byte: u8) -> u64 {
    const fn splitmix64(seed: u64) -> u64 {
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    const TABLE: [u64; 256] = {
        let mut t = [0u64; 256];
        let mut i = 0;
        while i < 256 {
            t[i] = splitmix64(i as u64);
            i += 1;
        }
        t
    };
    TABLE[byte as usize]
}

/// Content-defined chunker with min/avg/max segment bounds, all rounded
/// to multiples of [`Self::align`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunker {
    /// Boundary grid: the engine's container chunk size. Every segment
    /// is a whole number of these (the last may end ragged with the
    /// input).
    pub align: usize,
    /// Minimum segment bytes; candidates before this are never tested.
    pub min_bytes: usize,
    /// Target average segment bytes; sets the cut-probability mask.
    pub avg_bytes: usize,
    /// Maximum segment bytes; a forced cut if no boundary matched.
    pub max_bytes: usize,
}

impl Chunker {
    /// Default bounds for a container grid of `align` bytes: segments of
    /// 2–32 grid chunks, averaging 8 (8 KiB–128 KiB / 32 KiB at the
    /// paper's 4 KiB chunk size).
    pub fn for_align(align: usize) -> Self {
        let align = align.max(1);
        Self { align, min_bytes: 2 * align, avg_bytes: 8 * align, max_bytes: 32 * align }
    }

    /// Rounds the bounds onto the grid and repairs any min/avg/max
    /// inversion. Called by [`Self::segments`]; public so callers can
    /// inspect what a hand-built configuration normalizes to.
    pub fn normalized(&self) -> Self {
        let align = self.align.max(1);
        let to_grid = |bytes: usize| (bytes / align).max(1) * align;
        let min = to_grid(self.min_bytes);
        let max = to_grid(self.max_bytes).max(min);
        let avg = to_grid(self.avg_bytes).clamp(min, max);
        Self { align, min_bytes: min, avg_bytes: avg, max_bytes: max }
    }

    /// The boundary mask: a candidate cuts when `hash & mask == 0`.
    /// With candidates every `align` bytes, an average segment of
    /// `avg_bytes` needs a hit probability of `align / avg_bytes`, i.e.
    /// a mask of `avg_bytes / align` (rounded to a power of two) bits.
    fn mask(&self) -> u64 {
        ((self.avg_bytes / self.align).max(1) as u64).next_power_of_two() - 1
    }

    /// Splits `input` into content-defined segments. Segments partition
    /// the input exactly, every boundary is a multiple of
    /// [`Self::align`], and each segment spans `min_bytes..=max_bytes`
    /// (except the final segment, which simply ends with the input).
    pub fn segments(&self, input: &[u8]) -> Vec<Range<usize>> {
        let cfg = self.normalized();
        let mask = cfg.mask();
        let mut segments = Vec::new();
        let mut start = 0usize;
        while start < input.len() {
            let hard_end = (start + cfg.max_bytes).min(input.len());
            let mut end = hard_end;
            // Test candidates on the grid, earliest first; the decision
            // at `p` hashes only input[p - GEAR_WINDOW..p].
            let mut candidate = start + cfg.min_bytes;
            while candidate < hard_end {
                if boundary_hash(&input[candidate.saturating_sub(GEAR_WINDOW)..candidate]) & mask
                    == 0
                {
                    end = candidate;
                    break;
                }
                candidate += cfg.align;
            }
            segments.push(start..end);
            start = end;
        }
        segments
    }
}

/// The gear hash of the window preceding a candidate boundary.
fn boundary_hash(window: &[u8]) -> u64 {
    let mut h = 0u64;
    for &b in window {
        h = (h << 1).wrapping_add(gear(b));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALIGN: usize = 4096;

    fn sample(len: usize, seed: u64) -> Vec<u8> {
        // Simple deterministic byte soup with enough variety for the
        // hash to find boundaries.
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect()
    }

    #[test]
    fn segments_partition_the_input_on_the_grid() {
        let chunker = Chunker::for_align(ALIGN);
        let input = sample(1 << 20, 7);
        let segs = chunker.segments(&input);
        assert!(!segs.is_empty());
        let mut expected_start = 0;
        for (i, seg) in segs.iter().enumerate() {
            assert_eq!(seg.start, expected_start, "segment {i} not contiguous");
            assert_eq!(seg.start % ALIGN, 0, "segment {i} start off-grid");
            let last = i == segs.len() - 1;
            if !last {
                assert_eq!(seg.end % ALIGN, 0, "segment {i} end off-grid");
                assert!(seg.len() >= chunker.min_bytes, "segment {i} under min");
            }
            assert!(seg.len() <= chunker.max_bytes, "segment {i} over max");
            expected_start = seg.end;
        }
        assert_eq!(expected_start, input.len(), "segments do not cover the input");
    }

    #[test]
    fn average_segment_size_is_near_target() {
        let chunker = Chunker::for_align(ALIGN);
        let input = sample(4 << 20, 13);
        let segs = chunker.segments(&input);
        let avg = input.len() / segs.len();
        // Loose envelope: content-defined, but the mask must be doing
        // its job (neither all-min nor all-max).
        assert!(
            avg > chunker.min_bytes && avg < chunker.max_bytes,
            "average segment {avg} outside ({}, {})",
            chunker.min_bytes,
            chunker.max_bytes
        );
    }

    #[test]
    fn chunking_is_deterministic() {
        let chunker = Chunker::for_align(ALIGN);
        let input = sample(1 << 20, 99);
        assert_eq!(chunker.segments(&input), chunker.segments(&input));
    }

    #[test]
    fn boundaries_resynchronize_after_an_aligned_insertion() {
        let chunker = Chunker::for_align(ALIGN);
        let original = sample(1 << 20, 21);
        // Insert one grid-aligned block near the front.
        let at = 8 * ALIGN;
        let mut edited = original[..at].to_vec();
        edited.extend_from_slice(&sample(ALIGN, 4242));
        edited.extend_from_slice(&original[at..]);

        let a: std::collections::HashSet<Vec<u8>> =
            chunker.segments(&original).into_iter().map(|r| original[r].to_vec()).collect();
        let b: Vec<Vec<u8>> =
            chunker.segments(&edited).into_iter().map(|r| edited[r].to_vec()).collect();
        // Most segments after the insertion carry identical content at
        // shifted positions — that is the whole point of CDC. Demand a
        // strong majority rather than an exact count, since the segment
        // holding the edit (and its window neighbour) may change.
        let reused = b.iter().filter(|seg| a.contains(*seg)).count();
        assert!(
            reused * 10 >= b.len() * 7,
            "only {reused}/{} segments re-synchronized after an aligned insert",
            b.len()
        );
    }

    #[test]
    fn a_point_edit_touches_few_segments() {
        let chunker = Chunker::for_align(ALIGN);
        let original = sample(1 << 20, 34);
        let mut edited = original.clone();
        edited[123_456] ^= 0x5a;

        let a: Vec<Vec<u8>> =
            chunker.segments(&original).into_iter().map(|r| original[r].to_vec()).collect();
        let b: Vec<Vec<u8>> =
            chunker.segments(&edited).into_iter().map(|r| edited[r].to_vec()).collect();
        let a_set: std::collections::HashSet<&Vec<u8>> = a.iter().collect();
        let changed = b.iter().filter(|seg| !a_set.contains(*seg)).count();
        // The edit lands in one segment; boundary perturbation can cost
        // a couple more at most.
        assert!(changed <= 3, "a single point edit changed {changed} segments");
    }

    #[test]
    fn normalization_rounds_to_the_grid_and_orders_bounds() {
        let raw = Chunker { align: 4096, min_bytes: 5000, avg_bytes: 3000, max_bytes: 70_000 };
        let n = raw.normalized();
        assert_eq!(n.min_bytes % 4096, 0);
        assert_eq!(n.max_bytes % 4096, 0);
        assert!(n.min_bytes <= n.avg_bytes && n.avg_bytes <= n.max_bytes);
        // Degenerate bounds collapse to one grid chunk, not zero.
        let tiny = Chunker { align: 4096, min_bytes: 0, avg_bytes: 0, max_bytes: 0 }.normalized();
        assert_eq!(tiny.min_bytes, 4096);
        assert_eq!(tiny.max_bytes, 4096);
    }

    #[test]
    fn empty_and_sub_chunk_inputs() {
        let chunker = Chunker::for_align(ALIGN);
        assert!(chunker.segments(&[]).is_empty());
        let tiny = sample(100, 3);
        assert_eq!(chunker.segments(&tiny), vec![0..100]);
    }
}
