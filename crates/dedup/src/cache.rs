//! The bounded, sharded, content-addressed cache of compressed segments.
//!
//! Keys are SHA-256 digests of raw (uncompressed) segment bytes; values
//! carry everything the assembler needs to splice a hit into a
//! container v2 stream without touching the compressor: the compressed
//! body of every container chunk in the segment, the per-chunk CRCs of
//! those bodies (the container's `chunk_crcs` entries), and the CRCs of
//! the raw chunks (the inputs to the stream-CRC fold).
//!
//! Concurrency: the map is split into `SHARDS` shards, each behind
//! its own `parking_lot::Mutex`, selected by the first key byte — the
//! digest is uniformly distributed, so shards stay balanced and worker
//! threads rarely contend. Values are `Arc`s, so a hit holds no lock
//! while its bytes are in use.
//!
//! Eviction: each shard owns `budget / SHARDS` bytes (counting only
//! compressed body bytes, the dominant term). Inserting past the budget
//! evicts least-recently-used entries — recency is a global atomic tick
//! stamped on every hit — until the new entry fits. An entry larger
//! than a whole shard's budget is not admitted at all (it would only
//! evict everything and then itself).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hash::Digest;

/// Shard count; a power of two so the digest's first byte maps evenly.
const SHARDS: usize = 16;

/// A cached compressed segment: one entry per content-defined segment,
/// covering a whole number of container chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedSegment {
    /// Compressed body of each container chunk in the segment, in order.
    pub bodies: Vec<Vec<u8>>,
    /// `crc32(body)` for each body — the container v2 `chunk_crcs`
    /// entries, stored so hits skip re-hashing.
    pub body_crcs: Vec<u32>,
    /// `crc32(raw chunk)` for each uncompressed chunk — the stream-CRC
    /// fold inputs.
    pub raw_crcs: Vec<u32>,
    /// Uncompressed segment length.
    pub raw_len: usize,
}

impl CachedSegment {
    /// Compressed payload bytes this entry pins in memory.
    pub fn compressed_len(&self) -> usize {
        self.bodies.iter().map(Vec::len).sum()
    }
}

struct Shard {
    map: HashMap<Digest, Entry>,
    /// Sum of `compressed_len` over the shard's entries.
    bytes: usize,
}

struct Entry {
    segment: Arc<CachedSegment>,
    last_used: u64,
}

/// Point-in-time cache counters (monotonic except `stored_bytes` and
/// `entries`, which are current occupancy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Entries evicted to make room (excludes oversized rejections).
    pub evictions: u64,
    /// Raw (uncompressed) bytes whose compression was skipped because
    /// the segment was served from cache.
    pub bytes_saved: u64,
    /// Compressed bytes currently held.
    pub stored_bytes: u64,
    /// Entries currently held.
    pub entries: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded, byte-bounded, content-addressed LRU of compressed segments.
/// All methods take `&self`; safe to share across worker threads via
/// `Arc`.
pub struct ChunkCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    bytes_saved: AtomicU64,
}

impl std::fmt::Debug for ChunkCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkCache")
            .field("budget_bytes", &(self.shard_budget * SHARDS))
            .field("stats", &self.stats())
            .finish()
    }
}

impl ChunkCache {
    /// A cache bounded to roughly `budget_bytes` of compressed payload
    /// (rounded up to `SHARDS` bytes minimum so every shard can hold
    /// something).
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), bytes: 0 }))
                .collect(),
            shard_budget: (budget_bytes / SHARDS).max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes_saved: AtomicU64::new(0),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.shard_budget * SHARDS
    }

    fn shard(&self, key: &Digest) -> &Mutex<Shard> {
        &self.shards[key[0] as usize % SHARDS]
    }

    /// Looks `key` up, refreshing its recency on a hit and counting the
    /// outcome either way.
    pub fn lookup(&self, key: &Digest) -> Option<Arc<CachedSegment>> {
        let mut shard = self.shard(key).lock();
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = self.tick.fetch_add(1, Relaxed);
                let segment = Arc::clone(&entry.segment);
                drop(shard);
                self.hits.fetch_add(1, Relaxed);
                self.bytes_saved.fetch_add(segment.raw_len as u64, Relaxed);
                Some(segment)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Relaxed);
                None
            }
        }
    }

    /// Admits `segment` under `key`, evicting least-recently-used
    /// entries in its shard until it fits. Oversized segments (larger
    /// than one shard's budget) are not admitted. Re-inserting an
    /// existing key refreshes the value.
    pub fn insert(&self, key: Digest, segment: Arc<CachedSegment>) {
        let cost = segment.compressed_len();
        if cost > self.shard_budget {
            return;
        }
        let mut shard = self.shard(&key).lock();
        if let Some(old) = shard.map.remove(&key) {
            shard.bytes -= old.segment.compressed_len();
        }
        while shard.bytes + cost > self.shard_budget {
            // O(n) LRU scan; shards hold few enough entries that this
            // beats maintaining an intrusive list under a shim Mutex.
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("over budget implies a resident entry");
            let evicted = shard.map.remove(&victim).expect("victim resident");
            shard.bytes -= evicted.segment.compressed_len();
            self.evictions.fetch_add(1, Relaxed);
        }
        let last_used = self.tick.fetch_add(1, Relaxed);
        shard.bytes += cost;
        shard.map.insert(key, Entry { segment, last_used });
        self.insertions.fetch_add(1, Relaxed);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let mut stored_bytes = 0u64;
        let mut entries = 0u64;
        for shard in &self.shards {
            let shard = shard.lock();
            stored_bytes += shard.bytes as u64;
            entries += shard.map.len() as u64;
        }
        CacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            insertions: self.insertions.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            bytes_saved: self.bytes_saved.load(Relaxed),
            stored_bytes,
            entries,
        }
    }

    /// Drops every entry (counters keep their history).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.map.clear();
            shard.bytes = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256;

    fn segment(fill: u8, body_len: usize) -> Arc<CachedSegment> {
        Arc::new(CachedSegment {
            bodies: vec![vec![fill; body_len]],
            body_crcs: vec![0],
            raw_crcs: vec![0],
            raw_len: body_len * 2,
        })
    }

    #[test]
    fn lookup_miss_then_hit() {
        let cache = ChunkCache::new(1 << 20);
        let key = sha256(b"segment zero");
        assert!(cache.lookup(&key).is_none());
        cache.insert(key, segment(1, 100));
        let hit = cache.lookup(&key).expect("hit after insert");
        assert_eq!(hit.bodies[0], vec![1u8; 100]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.bytes_saved, 200);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        // One shard's budget is budget/16; craft keys landing in the
        // same shard so the LRU order is observable.
        let cache = ChunkCache::new(16 * 1000);
        let mut keys = Vec::new();
        let mut n = 0u32;
        while keys.len() < 3 {
            let key = sha256(&n.to_le_bytes());
            if (key[0] as usize).is_multiple_of(16) {
                keys.push(key);
            }
            n += 1;
        }
        cache.insert(keys[0], segment(0, 400));
        cache.insert(keys[1], segment(1, 400));
        // Touch key 0 so key 1 is the LRU victim.
        assert!(cache.lookup(&keys[0]).is_some());
        cache.insert(keys[2], segment(2, 400));
        assert!(cache.lookup(&keys[0]).is_some(), "recently used entry survived");
        assert!(cache.lookup(&keys[1]).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&keys[2]).is_some(), "new entry resident");
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert!(stats.stored_bytes <= 1000);
    }

    #[test]
    fn oversized_segments_are_not_admitted() {
        let cache = ChunkCache::new(16 * 100);
        let key = sha256(b"too big");
        cache.insert(key, segment(9, 5000));
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.stats().insertions, 0);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let cache = ChunkCache::new(1 << 20);
        let key = sha256(b"same key");
        cache.insert(key, segment(1, 300));
        cache.insert(key, segment(2, 500));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.stored_bytes, 500);
        assert_eq!(cache.lookup(&key).unwrap().bodies[0][0], 2);
    }

    #[test]
    fn clear_empties_but_keeps_history() {
        let cache = ChunkCache::new(1 << 20);
        let key = sha256(b"k");
        cache.insert(key, segment(1, 10));
        assert!(cache.lookup(&key).is_some());
        cache.clear();
        assert!(cache.lookup(&key).is_none());
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.stored_bytes, 0);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn concurrent_workers_stay_consistent() {
        let cache = Arc::new(ChunkCache::new(16 * 2000));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let key = sha256(&[t, (i % 8) as u8]);
                    match cache.lookup(&key) {
                        Some(seg) => assert_eq!(seg.raw_len, 100),
                        None => cache.insert(
                            key,
                            Arc::new(CachedSegment {
                                bodies: vec![vec![t; 50]],
                                body_crcs: vec![0],
                                raw_crcs: vec![0],
                                raw_len: 100,
                            }),
                        ),
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
        assert!(stats.stored_bytes <= cache.budget_bytes() as u64);
    }
}
