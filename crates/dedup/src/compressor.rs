//! The dedup front end: chunk, look up, compress misses, reassemble.
//!
//! [`DedupCompressor::compress_with`] splits the input into
//! content-defined segments (whole container chunks each, see
//! [`crate::chunker`]), serves segments whose SHA-256 it has seen from
//! the [`ChunkCache`], sends the rest through a caller-supplied segment
//! encoder — the GPU [`Culzss`] engine or the CPU reference — and
//! assembles one container v2 stream.
//!
//! Byte-compatibility is by construction, not by re-encoding: every
//! CULZSS engine compresses each container chunk independently of its
//! neighbours, so a chunk's compressed body depends only on the chunk's
//! raw bytes — a body compressed when the segment first appeared is
//! byte-identical to what the engine would emit for the same bytes at
//! any later position. The assembler stitches cached and fresh bodies
//! into the same rigid chunk grid the engine uses, rebuilds the size
//! and CRC tables, and folds the stream CRC from per-chunk raw CRCs via
//! [`culzss_lzss::crc::combine`] — so cache-on output is byte-identical
//! to cache-off output, and every existing decoder (strict, auto,
//! salvage) reads it unchanged.

use std::sync::Arc;

use culzss::{hetero, Culzss, CulzssError, CulzssParams, CulzssResult};
use culzss_lzss::container::{assemble_v2_precomputed, stream_crc_of, Container};
use culzss_lzss::crc::{combine, crc32};

use crate::cache::{CachedSegment, ChunkCache};
use crate::chunker::Chunker;
use crate::hash::sha256;

/// Per-call outcome counters from one [`DedupCompressor`] compression.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupReport {
    /// Content-defined segments the input split into.
    pub segments: usize,
    /// Segments served from cache.
    pub hit_segments: usize,
    /// Segments compressed fresh.
    pub miss_segments: usize,
    /// Uncompressed input bytes.
    pub raw_bytes: usize,
    /// Uncompressed bytes whose compression was skipped (cache hits).
    pub bytes_from_cache: usize,
    /// Bytes of the assembled container stream.
    pub stream_bytes: usize,
}

impl DedupReport {
    /// Fraction of segments served from cache.
    pub fn hit_rate(&self) -> f64 {
        if self.segments == 0 {
            0.0
        } else {
            self.hit_segments as f64 / self.segments as f64
        }
    }
}

/// Content-addressed dedup front end over a shared [`ChunkCache`].
///
/// The output is always a container **v2** stream (the checksummed
/// layout); it is byte-identical to what the wrapped engine emits
/// directly when that engine's `container_version` is V2 — the default
/// everywhere.
#[derive(Debug, Clone)]
pub struct DedupCompressor {
    cache: Arc<ChunkCache>,
    chunker: Chunker,
    params: CulzssParams,
}

impl DedupCompressor {
    /// A front end chunking on `params.chunk_size` with default segment
    /// bounds ([`Chunker::for_align`]).
    pub fn new(cache: Arc<ChunkCache>, params: CulzssParams) -> Self {
        let chunker = Chunker::for_align(params.chunk_size);
        Self { cache, chunker, params }
    }

    /// Overrides the segment bounds (still normalized onto the
    /// container grid).
    pub fn with_chunker(mut self, chunker: Chunker) -> Self {
        self.chunker = Chunker { align: self.params.chunk_size, ..chunker };
        self
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<ChunkCache> {
        &self.cache
    }

    /// The chunker in effect.
    pub fn chunker(&self) -> Chunker {
        self.chunker.normalized()
    }

    /// Compresses `input`, encoding cache-miss segments with
    /// `encode_segment` (which must return the compressed body of each
    /// container chunk in the segment, in order — see
    /// [`gpu_segment_encoder`] / [`cpu_segment_encoder`]).
    pub fn compress_with<F>(
        &self,
        input: &[u8],
        mut encode_segment: F,
    ) -> CulzssResult<(Vec<u8>, DedupReport)>
    where
        F: FnMut(&[u8]) -> CulzssResult<Vec<Vec<u8>>>,
    {
        let chunk_size = self.params.chunk_size.max(1);
        let mut report = DedupReport { raw_bytes: input.len(), ..DedupReport::default() };
        let mut resolved: Vec<Arc<CachedSegment>> = Vec::new();
        let mut stream_crc = 0u32;

        for range in self.chunker.segments(input) {
            let raw = &input[range];
            let key = sha256(raw);
            report.segments += 1;
            let segment = match self.cache.lookup(&key) {
                Some(hit) => {
                    report.hit_segments += 1;
                    report.bytes_from_cache += raw.len();
                    hit
                }
                None => {
                    report.miss_segments += 1;
                    let bodies = encode_segment(raw)?;
                    let expected = raw.len().div_ceil(chunk_size);
                    if bodies.len() != expected {
                        return Err(CulzssError::InvalidParams(format!(
                            "segment encoder returned {} bodies for a {}-byte segment \
                             ({expected} chunks of {chunk_size})",
                            bodies.len(),
                            raw.len(),
                        )));
                    }
                    let body_crcs = bodies.iter().map(|b| crc32(b)).collect();
                    let raw_crcs = raw.chunks(chunk_size).map(crc32).collect();
                    let segment =
                        Arc::new(CachedSegment { bodies, body_crcs, raw_crcs, raw_len: raw.len() });
                    self.cache.insert(key, Arc::clone(&segment));
                    segment
                }
            };
            for &raw_crc in &segment.raw_crcs {
                stream_crc = combine(stream_crc, raw_crc);
            }
            resolved.push(segment);
        }

        debug_assert_eq!(stream_crc, stream_crc_of(input, chunk_size as u32));
        let bodies: Vec<&[u8]> =
            resolved.iter().flat_map(|seg| seg.bodies.iter().map(Vec::as_slice)).collect();
        let chunk_crcs: Vec<u32> =
            resolved.iter().flat_map(|seg| seg.body_crcs.iter().copied()).collect();
        let stream = assemble_v2_precomputed(
            &self.params.lzss_config(),
            chunk_size as u32,
            input.len() as u64,
            stream_crc,
            &bodies,
            &chunk_crcs,
        )?;
        report.stream_bytes = stream.len();
        Ok((stream, report))
    }

    /// [`Self::compress_with`] over the simulated-GPU engine.
    pub fn compress_gpu(
        &self,
        culzss: &Culzss,
        input: &[u8],
    ) -> CulzssResult<(Vec<u8>, DedupReport)> {
        self.compress_with(input, gpu_segment_encoder(culzss))
    }

    /// [`Self::compress_with`] over the CPU reference engine.
    pub fn compress_cpu(
        &self,
        input: &[u8],
        threads: usize,
    ) -> CulzssResult<(Vec<u8>, DedupReport)> {
        let params = self.params.clone();
        self.compress_with(input, cpu_segment_encoder(&params, threads))
    }
}

/// Segment encoder over a [`Culzss`] engine: compresses the segment as
/// a standalone input and splits the resulting container back into
/// per-chunk bodies (chunk compression is position-independent, so the
/// bodies are exactly what a whole-input run would have produced).
pub fn gpu_segment_encoder(
    culzss: &Culzss,
) -> impl FnMut(&[u8]) -> CulzssResult<Vec<Vec<u8>>> + '_ {
    move |segment| {
        let (stream, _) = culzss.compress(segment)?;
        split_stream_bodies(&stream)
    }
}

/// Segment encoder over the CPU reference
/// ([`hetero::cpu_compress_bodies`]) — byte-identical to the V1 GPU
/// kernel.
pub fn cpu_segment_encoder<'a>(
    params: &'a CulzssParams,
    threads: usize,
) -> impl FnMut(&[u8]) -> CulzssResult<Vec<Vec<u8>>> + 'a {
    move |segment| Ok(hetero::cpu_compress_bodies(segment, params, threads))
}

/// Splits a container stream into its per-chunk compressed bodies.
pub fn split_stream_bodies(stream: &[u8]) -> CulzssResult<Vec<Vec<u8>>> {
    let (container, offset) = Container::parse(stream)?;
    let payload = &stream[offset..];
    Ok(container.chunk_layout().into_iter().map(|(range, _)| payload[range].to_vec()).collect())
}
