//! Differential pins for the dedup front end: a stream assembled from
//! cache hits must be byte-identical to the stream the engine would
//! have produced without a cache, and every v2-capable decoder in the
//! workspace — the GPU-path auto decoder, the threaded CPU decoder, and
//! the salvage decoder — must read it unchanged. Cache state must never
//! be observable in the output bytes.

use std::sync::Arc;

use culzss::{hetero, salvage, Culzss, CulzssParams, Version};
use culzss_datasets::{edits, Dataset};
use culzss_dedup::{ChunkCache, DedupCompressor};

fn front_end(params: &CulzssParams) -> DedupCompressor {
    DedupCompressor::new(Arc::new(ChunkCache::new(64 << 20)), params.clone())
}

/// A fully-cached (second-pass) stream decodes through every decoder.
#[test]
fn every_decoder_reads_the_fully_cached_stream() {
    let input = edits::snapshot(256 * 1024, 41, 1);
    let params = CulzssParams::v1();
    let dedup = front_end(&params);
    dedup.compress_cpu(&input, 2).unwrap();
    let (stream, report) = dedup.compress_cpu(&input, 2).unwrap();
    assert_eq!(report.miss_segments, 0, "second pass must be fully cached");
    assert_eq!(report.bytes_from_cache, input.len());

    let (auto, _) = Culzss::new(Version::V1).decompress_auto(&stream).unwrap();
    assert_eq!(auto, input, "auto decoder");
    assert_eq!(hetero::cpu_decompress(&stream, 2).unwrap(), input, "cpu decoder");
    let (salvaged, damage) = salvage::salvage(&stream).unwrap();
    assert_eq!(salvaged, input, "salvage decoder");
    assert!(damage.damaged.is_empty(), "{damage:?}");
    assert_eq!(damage.stream_crc_ok, Some(true));
}

/// A stream mixing cache hits with freshly compressed segments (an
/// edited resubmission) is byte-identical to the cache-off stream and
/// decodes through every decoder.
#[test]
fn mixed_hit_miss_streams_match_cache_off_and_decode_everywhere() {
    let params = CulzssParams::v1();
    let dedup = front_end(&params);
    let base = edits::snapshot(512 * 1024, 17, 1);
    dedup.compress_cpu(&base, 2).unwrap();

    let edited = edits::snapshot(512 * 1024, 17, 2);
    let (stream, report) = dedup.compress_cpu(&edited, 2).unwrap();
    assert!(report.hit_segments > 0, "edit generations must share segments: {report:?}");
    assert!(report.miss_segments > 0, "the edits must invalidate something: {report:?}");

    assert_eq!(stream, hetero::cpu_compress(&edited, &params, 2).unwrap());
    assert_eq!(hetero::cpu_decompress(&stream, 2).unwrap(), edited);
    let (auto, _) = Culzss::new(Version::V1).decompress_auto(&stream).unwrap();
    assert_eq!(auto, edited);
    let (salvaged, damage) = salvage::salvage(&stream).unwrap();
    assert_eq!(salvaged, edited);
    assert!(damage.damaged.is_empty(), "{damage:?}");
}

/// Cold and warm cache-on streams equal the cache-off stream for both
/// GPU engine versions across dissimilar corpora.
#[test]
fn cache_on_equals_cache_off_for_both_gpu_engines() {
    for version in [Version::V1, Version::V2] {
        let culzss = Culzss::new(version).with_workers(2);
        for (slug, input) in [
            ("incremental-edits", edits::snapshot(192 * 1024, 5, 2)),
            ("highly-compressible", Dataset::HighlyCompressible.generate(160 * 1024, 5)),
        ] {
            let reference = culzss.compress(&input).unwrap().0;
            let dedup = front_end(culzss.params());
            let (cold, _) = dedup.compress_gpu(&culzss, &input).unwrap();
            let (warm, warm_report) = dedup.compress_gpu(&culzss, &input).unwrap();
            assert_eq!(cold, reference, "{version:?}/{slug} cold");
            assert_eq!(warm, reference, "{version:?}/{slug} warm");
            assert_eq!(warm_report.miss_segments, 0, "{version:?}/{slug}");
        }
    }
}

/// Under V1 parameters the CPU and GPU engine paths produce identical
/// bytes, so a warm CPU-path stream also equals the GPU engine stream —
/// the cache front end preserves that cross-path identity.
#[test]
fn cpu_cached_stream_matches_the_gpu_engine_stream_under_v1() {
    let input = Dataset::Dictionary.generate(128 * 1024, 13);
    let culzss = Culzss::new(Version::V1).with_workers(2);
    let dedup = front_end(culzss.params());
    dedup.compress_cpu(&input, 2).unwrap();
    let (warm, report) = dedup.compress_cpu(&input, 2).unwrap();
    assert_eq!(report.miss_segments, 0);
    assert_eq!(warm, culzss.compress(&input).unwrap().0);
}
