//! The paper's custom highly compressible corpus.
//!
//! "Finally, we tested with a highly compressible, custom data set. It
//! contains repeating characters in substrings of 20. It is chosen to see
//! how well our program can run given the opportunity to compress in an
//! optimal data for LZSS."
//!
//! The generator emits blocks in which one 20-character substring repeats
//! back to back; every few kilobytes a new substring is drawn, so the data
//! remains trivially compressible without being a single degenerate run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Period of the repeating substrings (the paper's 20).
pub const PERIOD: usize = 20;

/// Generates exactly `len` bytes of repeating 20-byte substrings.
pub fn generate(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x41611);
    let mut out = Vec::with_capacity(len + PERIOD);
    while out.len() < len {
        // One printable 20-byte pattern...
        let pattern: Vec<u8> = (0..PERIOD).map(|_| rng.gen_range(b'A'..=b'Z')).collect();
        // ...repeated for a few KB.
        let block = rng.gen_range(2048..8192);
        let take = block.min(len + PERIOD - out.len());
        out.extend(pattern.iter().cycle().take(take));
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_length_and_deterministic() {
        let a = generate(33_333, 31);
        assert_eq!(a.len(), 33_333);
        assert_eq!(a, generate(33_333, 31));
    }

    #[test]
    fn period_is_twenty() {
        let data = generate(4096, 33);
        // Within the first block, bytes repeat at lag 20.
        let mut equal = 0;
        for i in 0..1000 {
            if data[i] == data[i + PERIOD] {
                equal += 1;
            }
        }
        assert!(equal > 990, "only {equal} of 1000 positions repeat at lag 20");
    }

    #[test]
    fn serial_ratio_matches_table2_band() {
        // Table II: 13.5 % serial LZSS (18-byte max match over a 20-byte
        // period costs ~2.1 B per 18 B plus refresh literals).
        let config = culzss_lzss::LzssConfig::dipperstein();
        let data = generate(256 * 1024, 35);
        let ratio =
            culzss_lzss::serial::compress(&data, &config).unwrap().len() as f64 / data.len() as f64;
        assert!((0.10..=0.18).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn v2_config_beats_serial_here() {
        // Table II's signature inversion: V2's 32-byte max match beats the
        // serial 18-byte cap on this dataset (6.34 % vs 13.5 %).
        let data = generate(128 * 1024, 37);
        let serial_cfg = culzss_lzss::LzssConfig::dipperstein();
        let v2_cfg = culzss_lzss::LzssConfig::culzss_v2();
        let r = |cfg: &culzss_lzss::LzssConfig| {
            culzss_lzss::serial::compress(&data, cfg).unwrap().len() as f64 / data.len() as f64
        };
        assert!(r(&v2_cfg) < r(&serial_cfg) * 0.7, "{} vs {}", r(&v2_cfg), r(&serial_cfg));
    }
}
