//! # culzss-datasets — the five CULZSS evaluation corpora, synthesized
//!
//! The paper evaluates on five 128 MB datasets: a collection of C files,
//! USGS Delaware raster map data, an English dictionary, part of a Linux
//! kernel tarball, and a custom highly compressible file of repeating
//! 20-character substrings. The real corpora are not redistributable /
//! fetchable here, so this crate generates statistically analogous data
//! deterministically from a seed:
//!
//! | Paper dataset | Generator | What is imitated |
//! |---|---|---|
//! | C files | [`c_source`] | keyword/identifier mix, indentation, repeated idioms |
//! | DE map (DRG/DLG) | [`raster`] | large uniform regions, dithering, scanline repeats |
//! | Dictionary | [`dictionary`] | sorted unique words ⇒ shared prefixes only |
//! | Kernel tarball | [`tar`] + [`c_source`] | ustar framing, source + binary mix |
//! | Highly compr. | [`highly`] | exact 20-byte period repeats |
//!
//! Each generator produces *exactly* the requested number of bytes and is
//! reproducible: same `(seed, len)` ⇒ same bytes. The [`registry`] module
//! exposes all five behind one enum, and [`paper`] records the numbers the
//! paper reports for each, so benches can print paper-vs-measured tables.
//!
//! A sixth corpus of ours, [`edits`] (incremental edits: a base snapshot
//! plus seeded generations of small changes), models the repeated-payload
//! traffic the dedup cache front end targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod c_source;
pub mod dictionary;
pub mod edits;
pub mod highly;
pub mod mixer;
pub mod paper;
pub mod raster;
pub mod registry;
pub mod stats;
pub mod tar;
pub mod words;

pub use registry::Dataset;
