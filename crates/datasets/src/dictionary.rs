//! Sorted-dictionary corpus — stand-in for the paper's English dictionary.
//!
//! "The third data is English dictionary. It is chosen for none repeating
//! text, since it is a list of alphabetically ordered not repeating
//! words." Sorted unique words only share *prefixes* with their
//! neighbours, which is why this is the hardest dataset for LZSS in
//! Table II (61.4 % serial ratio). The generator produces a sorted,
//! deduplicated word list, one word per line.

use crate::words::WordGen;

/// Generates exactly `len` bytes of sorted dictionary text.
pub fn generate(len: usize, seed: u64) -> Vec<u8> {
    // Generate enough unique words, sort them, then stream lines.
    let mut gen = WordGen::new(seed ^ 0xD1C7);
    let mut words = std::collections::BTreeSet::new();
    // Mean word ≈ 8 bytes incl. newline; 25 % headroom, then top up.
    let target_count = len / 6 + 16;
    // Real dictionaries are built from *stem families*: "abandon,
    // abandoned, abandonment, abandons" sit adjacent in sorted order, so
    // nearly all exploitable redundancy lies within a few entries
    // (≤128 bytes) — which is why Table II's narrow-window ratio (61.8 %)
    // almost equals the serial one (61.4 %). Across families the stems
    // are high-entropy and match little at any distance.
    const SUFFIXES: &[&str] = &["s", "ed", "ing", "er", "ly", "ness", "tion", "able"];
    let mut attempts = 0usize;
    while words.len() < target_count && attempts < target_count * 20 {
        let stem = gen.word(2 + attempts % 2);
        words.insert(stem.clone());
        let family = usize::from(attempts.is_multiple_of(4)); // every 4th stem has a family
        for f in 0..family {
            let suffix = SUFFIXES[(attempts * 5 + f * 3) % SUFFIXES.len()];
            words.insert(format!("{stem}{suffix}"));
        }
        attempts += 1;
    }
    let mut out = Vec::with_capacity(len + 32);
    'outer: loop {
        for w in &words {
            out.extend_from_slice(w.as_bytes());
            out.push(b'\n');
            if out.len() >= len {
                break 'outer;
            }
        }
        // Extremely small requests may exhaust the set; loop pads by
        // repeating (harmless for the sizes used in practice).
        if words.is_empty() {
            out.resize(len, b'\n');
            break;
        }
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_length_and_deterministic() {
        let a = generate(50_000, 11);
        assert_eq!(a.len(), 50_000);
        assert_eq!(a, generate(50_000, 11));
    }

    #[test]
    fn lines_are_sorted_and_unique() {
        let data = generate(64 * 1024, 13);
        let text = String::from_utf8(data).unwrap();
        let lines: Vec<&str> = text.lines().take(2000).collect();
        for pair in lines.windows(2) {
            assert!(pair[0] < pair[1], "{} !< {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn is_the_hardest_text_dataset() {
        // Table II ranks the dictionary worst among the text datasets.
        let config = culzss_lzss::LzssConfig::dipperstein();
        let dict = generate(128 * 1024, 17);
        let c_src = crate::c_source::generate(128 * 1024, 17);
        let ratio = |d: &[u8]| {
            culzss_lzss::serial::compress(d, &config).unwrap().len() as f64 / d.len() as f64
        };
        let (rd, rc) = (ratio(&dict), ratio(&c_src));
        assert!(rd > rc, "dictionary {rd} should compress worse than C {rc}");
        assert!((0.45..=0.80).contains(&rd), "ratio {rd}");
    }
}
