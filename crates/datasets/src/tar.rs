//! Minimal POSIX ustar archive writer — substrate for the kernel-tarball
//! corpus.
//!
//! The paper's fourth dataset is "part of the linux kernel tarball": C
//! source interleaved with 512-byte tar framing and some binary content.
//! Rather than approximating, this module writes real ustar entries
//! (magic, octal fields, header checksum, 512-byte padding) so the
//! generated corpus has the exact structural skeleton of a tarball.

/// Size of a tar block.
pub const BLOCK: usize = 512;

/// One archive member.
#[derive(Debug, Clone)]
pub struct Entry<'a> {
    /// Path inside the archive (≤ 100 bytes for this minimal writer).
    pub name: &'a str,
    /// File contents.
    pub data: &'a [u8],
}

/// Serializes `entries` into a ustar archive, including the two
/// terminating zero blocks.
pub fn write_archive(entries: &[Entry<'_>]) -> Vec<u8> {
    let mut out = Vec::new();
    for e in entries {
        append_entry(&mut out, e);
    }
    out.extend_from_slice(&[0u8; 2 * BLOCK]);
    out
}

/// Appends one member (header block + padded data blocks).
pub fn append_entry(out: &mut Vec<u8>, entry: &Entry<'_>) {
    assert!(entry.name.len() < 100, "name too long for minimal ustar writer");
    let mut header = [0u8; BLOCK];
    header[..entry.name.len()].copy_from_slice(entry.name.as_bytes());
    write_octal(&mut header[100..108], 0o644); // mode
    write_octal(&mut header[108..116], 0); // uid
    write_octal(&mut header[116..124], 0); // gid
    write_octal12(&mut header[124..136], entry.data.len() as u64); // size
    write_octal12(&mut header[136..148], 1_300_000_000); // mtime (fixed)
    header[156] = b'0'; // typeflag: regular file
    header[257..263].copy_from_slice(b"ustar\0");
    header[263..265].copy_from_slice(b"00");
    // Checksum: sum of header bytes with the checksum field as spaces.
    header[148..156].fill(b' ');
    let sum: u32 = header.iter().map(|&b| u32::from(b)).sum();
    let chk = format!("{sum:06o}\0 ");
    header[148..156].copy_from_slice(chk.as_bytes());

    out.extend_from_slice(&header);
    out.extend_from_slice(entry.data);
    let pad = (BLOCK - entry.data.len() % BLOCK) % BLOCK;
    out.extend(std::iter::repeat_n(0u8, pad));
}

fn write_octal(field: &mut [u8], value: u32) {
    let s = format!("{value:0width$o}\0", width = field.len() - 1);
    field.copy_from_slice(s.as_bytes());
}

fn write_octal12(field: &mut [u8], value: u64) {
    let s = format!("{value:011o}\0");
    field.copy_from_slice(s.as_bytes());
}

/// Parses the size field of the header at `offset` (used by tests and the
/// corpus self-check). Returns `(name, data_len)`.
pub fn parse_header(archive: &[u8], offset: usize) -> Option<(String, usize)> {
    let header = archive.get(offset..offset + BLOCK)?;
    if header.iter().all(|&b| b == 0) {
        return None; // terminator
    }
    let name_end = header[..100].iter().position(|&b| b == 0).unwrap_or(100);
    let name = String::from_utf8_lossy(&header[..name_end]).into_owned();
    let size_field = &header[124..135];
    let text = std::str::from_utf8(size_field).ok()?;
    let size = usize::from_str_radix(text.trim_matches(['\0', ' ']), 8).ok()?;
    Some((name, size))
}

/// Verifies the header checksum at `offset`.
pub fn verify_checksum(archive: &[u8], offset: usize) -> bool {
    let Some(header) = archive.get(offset..offset + BLOCK) else {
        return false;
    };
    let stored = std::str::from_utf8(&header[148..154])
        .ok()
        .and_then(|s| u32::from_str_radix(s.trim_matches(['\0', ' ']), 8).ok());
    let Some(stored) = stored else { return false };
    let mut sum = 0u32;
    for (i, &b) in header.iter().enumerate() {
        sum += if (148..156).contains(&i) { u32::from(b' ') } else { u32::from(b) };
    }
    stored == sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_entry() {
        let data = b"hello tar world";
        let archive = write_archive(&[Entry { name: "dir/file.c", data }]);
        // header + 1 data block + 2 terminator blocks.
        assert_eq!(archive.len(), BLOCK * 4);
        let (name, size) = parse_header(&archive, 0).unwrap();
        assert_eq!(name, "dir/file.c");
        assert_eq!(size, data.len());
        assert_eq!(&archive[BLOCK..BLOCK + data.len()], data);
        assert!(verify_checksum(&archive, 0));
    }

    #[test]
    fn multiple_entries_walk() {
        let archive = write_archive(&[
            Entry { name: "a.c", data: &[1u8; 600] },
            Entry { name: "b.c", data: &[2u8; 10] },
        ]);
        let (name, size) = parse_header(&archive, 0).unwrap();
        assert_eq!((name.as_str(), size), ("a.c", 600));
        let next = BLOCK + 600usize.div_ceil(BLOCK) * BLOCK;
        let (name, size) = parse_header(&archive, next).unwrap();
        assert_eq!((name.as_str(), size), ("b.c", 10));
        assert!(verify_checksum(&archive, next));
    }

    #[test]
    fn terminator_detected() {
        let archive = write_archive(&[]);
        assert_eq!(archive.len(), 2 * BLOCK);
        assert!(parse_header(&archive, 0).is_none());
    }

    #[test]
    fn empty_file_has_no_data_blocks() {
        let archive = write_archive(&[Entry { name: "empty", data: b"" }]);
        assert_eq!(archive.len(), 3 * BLOCK);
    }

    #[test]
    fn corrupt_checksum_detected() {
        let mut archive = write_archive(&[Entry { name: "x", data: b"abc" }]);
        archive[0] ^= 0xFF;
        assert!(!verify_checksum(&archive, 0));
    }
}
