//! Pseudo-English word generation shared by the text-like corpora.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Consonant-ish onsets used to assemble syllables.
const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "cl", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "l", "m", "n", "p",
    "pl", "pr", "qu", "r", "s", "sc", "sh", "sl", "sp", "st", "str", "t", "th", "tr", "v", "w",
    "wh", "z",
];

/// Vowel nuclei.
const NUCLEI: &[&str] = &["a", "ai", "au", "e", "ea", "ee", "i", "ie", "o", "oa", "oo", "ou", "u"];

/// Codas.
const CODAS: &[&str] = &[
    "", "b", "ck", "d", "ft", "g", "l", "ll", "m", "mp", "n", "nd", "ng", "nt", "p", "r", "rd",
    "rk", "rn", "s", "ss", "st", "t", "tch", "x",
];

/// Common English suffixes used to pad longer words.
const SUFFIXES: &[&str] =
    &["", "s", "ed", "ing", "er", "est", "ly", "ness", "ment", "tion", "able", "ish"];

/// Deterministic word source.
#[derive(Debug, Clone)]
pub struct WordGen {
    rng: SmallRng,
}

impl WordGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: SmallRng::seed_from_u64(seed) }
    }

    /// Emits one pseudo-word of roughly `syllables` syllables.
    pub fn word(&mut self, syllables: usize) -> String {
        let mut w = String::new();
        for _ in 0..syllables.max(1) {
            w.push_str(ONSETS[self.rng.gen_range(0..ONSETS.len())]);
            w.push_str(NUCLEI[self.rng.gen_range(0..NUCLEI.len())]);
            if self.rng.gen_bool(0.6) {
                w.push_str(CODAS[self.rng.gen_range(0..CODAS.len())]);
            }
        }
        if self.rng.gen_bool(0.3) {
            w.push_str(SUFFIXES[self.rng.gen_range(0..SUFFIXES.len())]);
        }
        w
    }

    /// Emits a word with a naturally distributed syllable count (1–4).
    pub fn natural_word(&mut self) -> String {
        let syllables = match self.rng.gen_range(0..10) {
            0..=3 => 1,
            4..=7 => 2,
            8 => 3,
            _ => 4,
        };
        self.word(syllables)
    }

    /// Underlying RNG access for callers mixing words with other draws.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = WordGen::new(42);
        let mut b = WordGen::new(42);
        for _ in 0..100 {
            assert_eq!(a.natural_word(), b.natural_word());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WordGen::new(1);
        let mut b = WordGen::new(2);
        let wa: Vec<String> = (0..20).map(|_| a.natural_word()).collect();
        let wb: Vec<String> = (0..20).map(|_| b.natural_word()).collect();
        assert_ne!(wa, wb);
    }

    #[test]
    fn words_are_lowercase_ascii() {
        let mut g = WordGen::new(7);
        for _ in 0..500 {
            let w = g.natural_word();
            assert!(!w.is_empty());
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()), "{w}");
        }
    }

    #[test]
    fn syllable_count_controls_length() {
        let mut g = WordGen::new(9);
        let short: usize = (0..100).map(|_| g.word(1).len()).sum();
        let long: usize = (0..100).map(|_| g.word(4).len()).sum();
        assert!(long > short * 2);
    }
}
