//! Synthetic C source — stand-in for the paper's "collection of C files".
//!
//! Real C code compresses to ~55 % under serial LZSS (Table II): keywords,
//! reused identifiers and structural idioms repeat within the window, but
//! they are embedded in a high-diversity stream of fresh identifiers,
//! numeric literals, comments and string messages. The generator mixes
//! both kinds of content and is calibrated (see the ratio test) to land in
//! the paper's band.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::words::WordGen;

/// C type spellings sprinkled through the output.
const TYPES: &[&str] =
    &["int", "char", "unsigned long", "size_t", "u32", "void *", "struct page *", "bool", "s64"];
const BINOPS: &[&str] = &["+", "-", "*", "&", "|", "^", "<<", ">>", "%"];
const CMPOPS: &[&str] = &["==", "!=", "<", ">", "<=", ">="];
/// Short identifiers, the bread and butter of real C: matches built from
/// them stay 3-7 bytes long, which is why a 128-byte window compresses C
/// almost as well as a 4096-byte one (Table II).
const SHORT_IDENTS: &[&str] = &[
    "i", "j", "k", "n", "ret", "err", "len", "buf", "idx", "ptr", "val", "tmp", "cnt", "off",
    "pos", "sz", "dst", "src", "dev", "ctx", "req", "res", "p", "q", "s", "d",
];

/// Generates exactly `len` bytes of C-like source code.
pub fn generate(len: usize, seed: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 256);
    let mut words = WordGen::new(seed ^ 0xC0DE);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut file_no = 0;
    while out.len() < len {
        let budget = len - out.len();
        emit_file(&mut out, &mut words, &mut rng, file_no, budget);
        file_no += 1;
    }
    out.truncate(len);
    out
}

/// Emits one synthetic translation unit of roughly 4–12 KB.
fn emit_file(
    out: &mut Vec<u8>,
    words: &mut WordGen,
    rng: &mut SmallRng,
    file_no: usize,
    budget: usize,
) {
    let target = rng.gen_range(4096..12288).min(budget + 512);
    let start = out.len();

    // A small rotating pool of *recently introduced* identifiers: real C
    // reuses the same handful of locals within a few adjacent lines, so
    // most identifier matches sit well inside even a 128-byte window
    // (which is why Table II's V1 ratio tracks the serial one so closely).
    let mut recent: std::collections::VecDeque<String> =
        (0..3).map(|_| words.natural_word()).collect();
    let funcs: Vec<String> = (0..rng.gen_range(6..14))
        .map(|_| format!("{}_{}", words.natural_word(), words.natural_word()))
        .collect();

    let header = words.natural_word();
    push_line(
        out,
        0,
        &format!(
            "/* {} {} {} — unit {file_no} */",
            words.natural_word(),
            words.natural_word(),
            words.natural_word()
        ),
    );
    push_line(out, 0, &format!("#include <linux/{header}.h>"));
    push_line(out, 0, "#include <linux/kernel.h>");
    push_line(out, 0, "");

    while out.len() - start < target {
        let func = &funcs[rng.gen_range(0..funcs.len())];
        let ret = TYPES[rng.gen_range(0..TYPES.len())];
        let arg = recent[rng.gen_range(0..recent.len())].clone();
        let arg = &arg;
        if rng.gen_bool(0.3) {
            push_line(
                out,
                0,
                &format!(
                    "/* {} the {} {} before {} */",
                    words.natural_word(),
                    words.natural_word(),
                    words.natural_word(),
                    words.natural_word()
                ),
            );
        }
        let sig = match rng.gen_range(0..4) {
            0 => format!(
                "static {ret} {func}(struct {} *{}, int {arg})",
                words.natural_word(),
                words.natural_word()
            ),
            1 => format!("static {ret} {func}(void)"),
            2 => format!("static {ret} {func}(u32 {arg}, const char *{})", words.natural_word()),
            _ => format!("{ret} {func}({} {arg})", TYPES[rng.gen_range(0..TYPES.len())]),
        };
        push_line(out, 0, &sig);
        push_line(out, 0, "{");
        let body_lines = rng.gen_range(4..18);
        let mut emitted = 0usize;
        while emitted < body_lines {
            if rng.gen_bool(0.20) {
                emit_idiom_block(out, rng, words);
                emitted += 3;
                continue;
            }
            // Real code clusters: several statements of the same shape in
            // a row (assignment blocks, call sequences), so the template
            // skeleton repeats within a line or two.
            let template = rng.gen_range(0..12);
            let cluster = rng.gen_range(2..6);
            let depth = rng.gen_range(1..4);
            for _ in 0..cluster {
                emit_statement(out, rng, words, &mut recent, &funcs, depth, template);
                emitted += 1;
            }
        }
        let result = &recent[rng.gen_range(0..recent.len())];
        push_line(out, 1, &format!("return {result};"));
        push_line(out, 0, "}");
        push_line(out, 0, "");
    }
}

/// Emits a run of 2–5 near-identical lines (field-assignment blocks,
/// register writes, etc.) — the hyper-local redundancy real C is full of.
fn emit_idiom_block(out: &mut Vec<u8>, rng: &mut SmallRng, words: &mut WordGen) {
    let base = SHORT_IDENTS[rng.gen_range(0..SHORT_IDENTS.len())];
    let target = words.natural_word();
    let lines = rng.gen_range(2..4);
    for _ in 0..lines {
        let field = words.natural_word();
        match rng.gen_range(0..3) {
            0 => push_line(out, 1, &format!("{base}->{field} = {target}.{field};")),
            1 => push_line(
                out,
                1,
                &format!("writel({base}->{field}, {target}_base + REG_{});", rng.gen_range(0..64)),
            ),
            _ => push_line(out, 1, &format!("{base}.{field} = le32_to_cpu(raw->{field});")),
        }
    }
}

fn emit_statement(
    out: &mut Vec<u8>,
    rng: &mut SmallRng,
    words: &mut WordGen,
    recent: &mut std::collections::VecDeque<String>,
    funcs: &[String],
    depth: usize,
    template: usize,
) {
    // Mostly short C identifiers (short matches, any window), sometimes a
    // recently introduced longer name, rarely a fresh one that displaces
    // the oldest.
    let mut pick = |rng: &mut SmallRng, words: &mut WordGen| {
        let roll = rng.gen_range(0..10);
        if roll < 6 {
            SHORT_IDENTS[rng.gen_range(0..SHORT_IDENTS.len())].to_string()
        } else if roll < 8 {
            recent[rng.gen_range(0..recent.len())].clone()
        } else {
            let fresh = words.natural_word();
            recent.pop_front();
            recent.push_back(fresh.clone());
            fresh
        }
    };
    let a = pick(rng, words);
    let b = pick(rng, words);
    let c = pick(rng, words);
    let (a, b, c) = (&a, &b, &c);
    let f = &funcs[rng.gen_range(0..funcs.len())];
    let op = BINOPS[rng.gen_range(0..BINOPS.len())];
    let cmp = CMPOPS[rng.gen_range(0..CMPOPS.len())];
    match template {
        0 => push_line(out, depth, &format!("if ({a} {cmp} {b})")),
        1 => push_line(out, depth, &format!("{a} = {f}(dev, {b} {op} {c});")),
        2 => push_line(
            out,
            depth,
            &format!(
                "for ({a} = {}; {a} < {b}; {a} += {}) {{",
                rng.gen_range(0..8),
                rng.gen_range(1..5)
            ),
        ),
        3 => push_line(
            out,
            depth,
            &format!(
                "{a}->{b} = {c}->{} {op} {};",
                words.natural_word(),
                rng.gen_range(0..100_000u32)
            ),
        ),
        4 => push_line(out, depth, &format!("{a} = ({b} {op} 0x{:x}) {op} {c};", rng.gen::<u32>())),
        5 => push_line(
            out,
            depth,
            &format!(
                "{}(\"{}: {} {} %d (%lx)\\n\", __func__, {b}, 0x{:x});",
                ["pr_debug", "pr_warn", "dev_err", "trace_printk"][rng.gen_range(0..4)],
                words.natural_word(),
                words.natural_word(),
                words.natural_word(),
                rng.gen::<u32>()
            ),
        ),
        6 => push_line(
            out,
            depth,
            &format!(
                "{}(&{a}->{});",
                ["spin_lock", "mutex_lock", "spin_unlock", "up_read"][rng.gen_range(0..4)],
                words.natural_word()
            ),
        ),
        7 => push_line(out, depth, &format!("{a} = {b} & 0x{:04x};", rng.gen_range(0..0xFFFFu32))),
        8 => push_line(out, depth, &format!("WARN_ON({a} {cmp} {});", rng.gen_range(0..4096u32))),
        9 => push_line(
            out,
            depth,
            &format!(
                "memcpy({a}, {b} + {}, sizeof(*{c}) * {});",
                rng.gen_range(0..64u32),
                rng.gen_range(1..32u32)
            ),
        ),
        10 => push_line(out, depth, &format!("}} /* {} */", words.natural_word())),
        _ => push_line(out, depth, &format!("{a} = {b} {op} {c};")),
    }
}

fn push_line(out: &mut Vec<u8>, depth: usize, line: &str) {
    for _ in 0..depth {
        out.push(b'\t');
    }
    out.extend_from_slice(line.as_bytes());
    out.push(b'\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_length_and_deterministic() {
        let a = generate(10_000, 1);
        let b = generate(10_000, 1);
        assert_eq!(a.len(), 10_000);
        assert_eq!(a, b);
        assert_ne!(a, generate(10_000, 2));
    }

    #[test]
    fn looks_like_c() {
        let data = generate(20_000, 3);
        let text = String::from_utf8_lossy(&data);
        assert!(text.contains("#include"));
        assert!(text.contains("static"));
        assert!(text.contains("return"));
        assert!(text.lines().count() > 100);
    }

    #[test]
    fn compresses_like_the_paper_band() {
        // Table II: serial LZSS ratio 54.8 % on C files; our synthetic
        // analogue should land in a generous band around it.
        let data = generate(256 * 1024, 5);
        let config = culzss_lzss::LzssConfig::dipperstein();
        let c = culzss_lzss::serial::compress(&data, &config).unwrap();
        let ratio = c.len() as f64 / data.len() as f64;
        assert!((0.42..=0.68).contains(&ratio), "ratio {ratio}");
    }
}
