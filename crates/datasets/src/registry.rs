//! One enum over the five evaluation corpora.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{c_source, dictionary, highly, raster, tar, words::WordGen};

/// The paper's five evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// "C files" — a collection of C source.
    CFiles,
    /// "DE Map" — Delaware DRG/DLG raster map data.
    DeMap,
    /// "Dictionary" — alphabetically sorted unique words.
    Dictionary,
    /// "Kernel tarball" — part of a Linux kernel source tarball.
    KernelTarball,
    /// "Highly Compr." — repeating 20-character substrings.
    HighlyCompressible,
    /// Incremental-edits corpus (ours, not the paper's): a base
    /// snapshot plus seeded generations of point edits and
    /// grid-aligned block inserts/deletes — the dedup cache's target
    /// workload. See [`crate::edits`] for the generation-indexed API.
    IncrementalEdits,
}

impl Dataset {
    /// The paper's five, in the paper's table order. Excludes
    /// [`Dataset::IncrementalEdits`], which is ours — paper-versus-
    /// measured tables iterate this array and must keep its shape.
    pub const ALL: [Dataset; 5] = [
        Dataset::CFiles,
        Dataset::DeMap,
        Dataset::Dictionary,
        Dataset::KernelTarball,
        Dataset::HighlyCompressible,
    ];

    /// Every corpus this crate can generate: [`Dataset::ALL`] plus the
    /// incremental-edits corpus.
    pub const EVERY: [Dataset; 6] = [
        Dataset::CFiles,
        Dataset::DeMap,
        Dataset::Dictionary,
        Dataset::KernelTarball,
        Dataset::HighlyCompressible,
        Dataset::IncrementalEdits,
    ];

    /// Row label as printed in the paper's tables.
    pub fn paper_label(&self) -> &'static str {
        match self {
            Dataset::CFiles => "C files",
            Dataset::DeMap => "DE Map",
            Dataset::Dictionary => "Dictionary",
            Dataset::KernelTarball => "Kernel tarball",
            Dataset::HighlyCompressible => "Highly Compr.",
            Dataset::IncrementalEdits => "Incremental edits",
        }
    }

    /// Short machine-friendly name (CLI values, bench ids).
    pub fn slug(&self) -> &'static str {
        match self {
            Dataset::CFiles => "c-files",
            Dataset::DeMap => "de-map",
            Dataset::Dictionary => "dictionary",
            Dataset::KernelTarball => "kernel-tarball",
            Dataset::HighlyCompressible => "highly-compressible",
            Dataset::IncrementalEdits => "incremental-edits",
        }
    }

    /// Looks a dataset up by [`Dataset::slug`].
    pub fn from_slug(slug: &str) -> Option<Dataset> {
        Dataset::EVERY.iter().copied().find(|d| d.slug() == slug)
    }

    /// Generates exactly `len` bytes of this corpus.
    pub fn generate(&self, len: usize, seed: u64) -> Vec<u8> {
        match self {
            Dataset::CFiles => c_source::generate(len, seed),
            Dataset::DeMap => raster::generate(len, seed),
            Dataset::Dictionary => dictionary::generate(len, seed),
            Dataset::KernelTarball => kernel_tarball(len, seed),
            Dataset::HighlyCompressible => highly::generate(len, seed),
            Dataset::IncrementalEdits => crate::edits::generate(len, seed),
        }
    }
}

/// Builds a kernel-source-like tarball: mostly C files, some Makefiles and
/// Kconfig text, and occasional binary blobs (firmware), all in real ustar
/// framing, cut to exactly `len` bytes ("part of the linux kernel
/// tarball").
fn kernel_tarball(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7A5B411);
    let mut names = WordGen::new(seed ^ 0x7A5);
    let mut out = Vec::with_capacity(len + 4096);
    let mut file_no = 0usize;
    while out.len() < len {
        let dir = ["drivers", "fs", "kernel", "mm", "net", "arch/x86"][rng.gen_range(0..6)];
        let base = names.natural_word();
        let kind = rng.gen_range(0..10);
        let (name, data) = match kind {
            // 70 %: C source.
            0..=6 => (
                format!("linux/{dir}/{base}_{file_no}.c"),
                c_source::generate(rng.gen_range(3000..9000), seed ^ file_no as u64),
            ),
            // 10 %: Makefile-ish text.
            7 => {
                let mut mk = String::new();
                for _ in 0..rng.gen_range(8..30) {
                    let obj = names.natural_word();
                    mk.push_str(&format!("obj-$(CONFIG_{}) += {obj}.o\n", obj.to_uppercase()));
                }
                (format!("linux/{dir}/Makefile_{file_no}"), mk.into_bytes())
            }
            // 10 %: Kconfig-ish text.
            8 => {
                let mut kc = String::new();
                for _ in 0..rng.gen_range(4..12) {
                    let opt = names.natural_word().to_uppercase();
                    kc.push_str(&format!("config {opt}\n\tbool \"Enable {opt}\"\n\tdefault y\n\n"));
                }
                (format!("linux/{dir}/Kconfig_{file_no}"), kc.into_bytes())
            }
            // 10 %: binary firmware blob (high entropy).
            _ => {
                let blob: Vec<u8> = (0..rng.gen_range(1024..4096)).map(|_| rng.gen()).collect();
                (format!("linux/firmware/{base}_{file_no}.bin"), blob)
            }
        };
        tar::append_entry(&mut out, &tar::Entry { name: &name, data: &data });
        file_no += 1;
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_exact_lengths() {
        for d in Dataset::EVERY {
            let data = d.generate(12_345, 99);
            assert_eq!(data.len(), 12_345, "{}", d.slug());
            assert_eq!(data, d.generate(12_345, 99), "{} not deterministic", d.slug());
        }
    }

    #[test]
    fn slugs_roundtrip() {
        for d in Dataset::EVERY {
            assert_eq!(Dataset::from_slug(d.slug()), Some(d));
        }
        assert_eq!(Dataset::from_slug("nope"), None);
    }

    #[test]
    fn kernel_tarball_has_valid_ustar_framing() {
        let data = Dataset::KernelTarball.generate(256 * 1024, 5);
        // Walk headers until the truncation point; all checksums valid.
        let mut offset = 0usize;
        let mut entries = 0usize;
        while offset + tar::BLOCK <= data.len() {
            match tar::parse_header(&data, offset) {
                Some((name, size)) => {
                    assert!(name.starts_with("linux/"), "{name}");
                    assert!(tar::verify_checksum(&data, offset), "bad checksum at {offset}");
                    entries += 1;
                    offset += tar::BLOCK + size.div_ceil(tar::BLOCK) * tar::BLOCK;
                }
                None => break,
            }
        }
        assert!(entries >= 10, "only {entries} entries");
    }

    #[test]
    fn table2_ratio_ordering_is_reproduced() {
        // Serial LZSS, Table II: DE Map (33.9) < C files (54.8) ≈ Kernel
        // (55.1) < Dictionary (61.4); Highly (13.5) best of all.
        let config = culzss_lzss::LzssConfig::dipperstein();
        let n = 192 * 1024;
        let ratio = |d: Dataset| {
            let data = d.generate(n, 1234);
            culzss_lzss::serial::compress(&data, &config).unwrap().len() as f64 / n as f64
        };
        let highly = ratio(Dataset::HighlyCompressible);
        let demap = ratio(Dataset::DeMap);
        let cfiles = ratio(Dataset::CFiles);
        let kernel = ratio(Dataset::KernelTarball);
        let dict = ratio(Dataset::Dictionary);
        assert!(highly < demap, "{highly} {demap}");
        assert!(demap < cfiles, "{demap} {cfiles}");
        assert!(cfiles < dict, "{cfiles} {dict}");
        // Kernel tarball and dictionary sit within a few points of each
        // other (paper: 55.1 % vs 61.4 %); our tarball's binary blobs put
        // it marginally above the dictionary at some seeds.
        assert!(kernel < dict + 0.05, "{kernel} {dict}");
        assert!((kernel - cfiles).abs() < 0.15, "{kernel} vs {cfiles}");
    }
}
