//! Weighted corpus mixing — realistic heterogeneous traffic.
//!
//! Real gateway or checkpoint traffic is rarely a single data class; the
//! mixer interleaves segments drawn from the five corpora under a
//! weighted distribution, producing streams whose compressibility varies
//! along their length — exactly the situation the paper's per-call
//! version-selection API exists for.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::registry::Dataset;

/// One component of a mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Which corpus to draw from.
    pub dataset: Dataset,
    /// Relative weight (any positive scale).
    pub weight: f64,
}

/// A weighted mixture of corpora.
#[derive(Debug, Clone)]
pub struct Mixer {
    components: Vec<Component>,
    /// Mean segment length in bytes.
    segment_bytes: usize,
}

impl Mixer {
    /// Builds a mixer; weights must be positive and non-empty.
    pub fn new(components: Vec<Component>) -> Self {
        assert!(!components.is_empty(), "a mix needs at least one component");
        assert!(components.iter().all(|c| c.weight > 0.0), "weights must be positive");
        Self { components, segment_bytes: 16 * 1024 }
    }

    /// A mix resembling mixed datacenter traffic: mostly source/text,
    /// some imagery, a slice of highly repetitive telemetry.
    pub fn datacenter() -> Self {
        Self::new(vec![
            Component { dataset: Dataset::CFiles, weight: 3.0 },
            Component { dataset: Dataset::KernelTarball, weight: 2.0 },
            Component { dataset: Dataset::DeMap, weight: 2.0 },
            Component { dataset: Dataset::Dictionary, weight: 1.0 },
            Component { dataset: Dataset::HighlyCompressible, weight: 2.0 },
        ])
    }

    /// Overrides the mean segment length.
    pub fn with_segment_bytes(mut self, bytes: usize) -> Self {
        self.segment_bytes = bytes.max(64);
        self
    }

    /// Generates exactly `len` bytes of mixed traffic.
    pub fn generate(&self, len: usize, seed: u64) -> Vec<u8> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x313E5);
        let total: f64 = self.components.iter().map(|c| c.weight).sum();
        let mut out = Vec::with_capacity(len + self.segment_bytes);
        let mut draw_no = 0u64;
        while out.len() < len {
            // Weighted component pick.
            let mut ticket = rng.gen::<f64>() * total;
            let mut chosen = self.components[0].dataset;
            for c in &self.components {
                if ticket < c.weight {
                    chosen = c.dataset;
                    break;
                }
                ticket -= c.weight;
            }
            // Variable segment size around the mean.
            let seg = rng.gen_range(self.segment_bytes / 2..self.segment_bytes * 3 / 2);
            let seg = seg.min(len + self.segment_bytes - out.len());
            out.extend_from_slice(&chosen.generate(seg, seed.wrapping_add(draw_no)));
            draw_no += 1;
        }
        out.truncate(len);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_exact_length() {
        let m = Mixer::datacenter();
        let a = m.generate(100_000, 5);
        assert_eq!(a.len(), 100_000);
        assert_eq!(a, m.generate(100_000, 5));
        assert_ne!(a, m.generate(100_000, 6));
    }

    #[test]
    fn single_component_mix_is_segmented_corpus() {
        let m = Mixer::new(vec![Component { dataset: Dataset::HighlyCompressible, weight: 1.0 }]);
        let data = m.generate(50_000, 7);
        // Still highly compressible overall.
        let config = culzss_lzss::LzssConfig::dipperstein();
        let c = culzss_lzss::serial::compress(&data, &config).unwrap();
        assert!(c.len() * 4 < data.len());
    }

    #[test]
    fn mixed_traffic_sits_between_its_extremes() {
        let config = culzss_lzss::LzssConfig::dipperstein();
        let ratio = |data: &[u8]| {
            culzss_lzss::serial::compress(data, &config).unwrap().len() as f64 / data.len() as f64
        };
        let n = 256 * 1024;
        let mixed = ratio(&Mixer::datacenter().generate(n, 9));
        let easy = ratio(&Dataset::HighlyCompressible.generate(n, 9));
        let hard = ratio(&Dataset::Dictionary.generate(n, 9));
        assert!(mixed > easy, "{mixed} vs {easy}");
        assert!(mixed < hard, "{mixed} vs {hard}");
    }

    #[test]
    fn segment_size_is_respected_roughly() {
        let m = Mixer::datacenter().with_segment_bytes(1024);
        let data = m.generate(64 * 1024, 11);
        assert_eq!(data.len(), 64 * 1024);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_mix_panics() {
        Mixer::new(vec![]);
    }
}
