//! Corpus statistics: entropy, byte histograms, periodicity.
//!
//! Used to validate that the synthetic corpora imitate their real
//! counterparts (the repro harness prints these next to the ratio
//! tables), and generally handy when deciding which CULZSS version fits
//! a traffic class.

/// Order-0 (byte) Shannon entropy in bits per byte.
pub fn entropy_bits_per_byte(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Number of distinct byte values present.
pub fn alphabet_size(data: &[u8]) -> usize {
    let mut seen = [false; 256];
    for &b in data {
        seen[b as usize] = true;
    }
    seen.iter().filter(|&&s| s).count()
}

/// Fraction of positions where `data[i] == data[i - lag]`.
pub fn self_similarity(data: &[u8], lag: usize) -> f64 {
    if lag == 0 || data.len() <= lag {
        return 0.0;
    }
    let matches = (lag..data.len()).filter(|&i| data[i] == data[i - lag]).count();
    matches as f64 / (data.len() - lag) as f64
}

/// Detects the strongest repetition period in `1..=max_lag` (the lag with
/// the highest self-similarity), returning `(lag, similarity)`. Returns
/// `None` for empty/tiny inputs.
pub fn dominant_period(data: &[u8], max_lag: usize) -> Option<(usize, f64)> {
    if data.len() < 4 {
        return None;
    }
    (1..=max_lag.min(data.len() - 1))
        .map(|lag| (lag, self_similarity(data, lag)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

/// Summary used by the harness's corpus self-check.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusProfile {
    /// Bits per byte (order-0).
    pub entropy: f64,
    /// Distinct byte values.
    pub alphabet: usize,
    /// Strongest short-range period and its strength.
    pub period: Option<(usize, f64)>,
}

/// Profiles a corpus sample.
pub fn profile(data: &[u8]) -> CorpusProfile {
    CorpusProfile {
        entropy: entropy_bits_per_byte(data),
        alphabet: alphabet_size(data),
        period: dominant_period(data, 64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;

    #[test]
    fn entropy_bounds() {
        assert_eq!(entropy_bits_per_byte(b""), 0.0);
        assert_eq!(entropy_bits_per_byte(&[7u8; 1000]), 0.0);
        let uniform: Vec<u8> = (0..=255u8).cycle().take(256 * 64).collect();
        assert!((entropy_bits_per_byte(&uniform) - 8.0).abs() < 1e-9);
        // Two equiprobable symbols: exactly 1 bit.
        let coin: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        assert!((entropy_bits_per_byte(&coin) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alphabet_counts() {
        assert_eq!(alphabet_size(b""), 0);
        assert_eq!(alphabet_size(b"aaaa"), 1);
        assert_eq!(alphabet_size(b"abcabc"), 3);
    }

    #[test]
    fn period_detection_finds_the_papers_twenty() {
        let data = Dataset::HighlyCompressible.generate(64 * 1024, 3);
        let (lag, strength) = dominant_period(&data, 64).unwrap();
        assert_eq!(lag, crate::highly::PERIOD, "strength {strength}");
        assert!(strength > 0.95);
    }

    #[test]
    fn self_similarity_edges() {
        assert_eq!(self_similarity(b"abc", 0), 0.0);
        assert_eq!(self_similarity(b"ab", 5), 0.0);
        assert_eq!(self_similarity(b"aaaa", 1), 1.0);
    }

    #[test]
    fn corpus_entropies_are_ordered_sensibly() {
        let n = 128 * 1024;
        let e = |d: Dataset| entropy_bits_per_byte(&d.generate(n, 9));
        // Raster map: small palette → low entropy; text: mid; tarball
        // includes binary blobs → higher than plain C.
        assert!(e(Dataset::DeMap) < e(Dataset::CFiles), "map vs c");
        assert!(e(Dataset::CFiles) < 6.0);
        assert!(e(Dataset::HighlyCompressible) < 5.0);
        assert!(e(Dataset::KernelTarball) > e(Dataset::CFiles));
    }

    #[test]
    fn profile_is_complete() {
        let p = profile(&Dataset::Dictionary.generate(32 * 1024, 5));
        assert!(p.entropy > 2.0 && p.entropy < 6.0);
        assert!(p.alphabet > 10);
        assert!(p.period.is_some());
    }
}
