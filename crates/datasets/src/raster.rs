//! Raster-map corpus — stand-in for the USGS Delaware DRG/DLG data.
//!
//! Digital raster graphics of topographic sheets are paletted images
//! whose redundancy is dominated by *horizontal* structure: long uniform
//! runs (water, open land), short-period halftone dithering, and noisy
//! line-work. Matches are therefore short-range, which is why Table II
//! shows the 128-byte CULZSS window costing almost nothing on this
//! dataset (34.2 % vs 33.9 % serial). A small fraction of scanlines are
//! verbatim copies of their predecessor (vertical coherence), giving the
//! 4096-byte serial window its slight edge.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Width of the virtual image in pixels (bytes).
const WIDTH: usize = 1024;

/// Palette indices for region fills.
const REGION_COLORS: &[u8] = &[0x00, 0x11, 0x22, 0x5A, 0x7F, 0xC3];

/// Full palette used in noisy line-work areas.
const DETAIL_COLORS: &[u8] =
    &[0x00, 0x11, 0x22, 0x33, 0x44, 0x5A, 0x66, 0x7F, 0x99, 0xAA, 0xC3, 0xE0, 0xFE];

/// Generates exactly `len` bytes of raster-like data.
pub fn generate(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xDE11A);
    let mut out = Vec::with_capacity(len + WIDTH);
    let mut prev = paint_scanline(&mut rng);
    out.extend_from_slice(&prev);
    while out.len() < len {
        if rng.gen_bool(0.10) {
            // Vertical coherence: repeat the previous scanline verbatim
            // (only the wide serial window can exploit this).
            out.extend_from_slice(&prev);
        } else {
            let line = paint_scanline(&mut rng);
            out.extend_from_slice(&line);
            prev = line;
        }
    }
    out.truncate(len);
    out
}

/// Paints one scanline from horizontal segments: uniform runs, periodic
/// dither, and line-work noise, in calibrated proportions.
fn paint_scanline(rng: &mut SmallRng) -> Vec<u8> {
    let mut line = Vec::with_capacity(WIDTH);
    while line.len() < WIDTH {
        let remaining = WIDTH - line.len();
        match rng.gen_range(0..10) {
            // 30 %: uniform region run.
            0..=2 => {
                let color = REGION_COLORS[rng.gen_range(0..REGION_COLORS.len())];
                let run = rng.gen_range(8..160).min(remaining);
                line.extend(std::iter::repeat_n(color, run));
            }
            // 30 %: short-period dither (halftone pattern).
            3..=5 => {
                let a = REGION_COLORS[rng.gen_range(0..REGION_COLORS.len())];
                let b = DETAIL_COLORS[rng.gen_range(0..DETAIL_COLORS.len())];
                let period = rng.gen_range(2..6);
                let run = rng.gen_range(12..80).min(remaining);
                for i in 0..run {
                    line.push(if (i / period) % 2 == 0 { a } else { b });
                }
            }
            // 40 %: line-work noise over the full palette.
            _ => {
                let run = rng.gen_range(6..40).min(remaining);
                for _ in 0..run {
                    line.push(DETAIL_COLORS[rng.gen_range(0..DETAIL_COLORS.len())]);
                }
            }
        }
    }
    line.truncate(WIDTH);
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_length_and_deterministic() {
        let a = generate(100_000, 21);
        assert_eq!(a.len(), 100_000);
        assert_eq!(a, generate(100_000, 21));
        assert_ne!(a, generate(100_000, 22));
    }

    #[test]
    fn palette_is_small() {
        let data = generate(64 * 1024, 23);
        let mut seen = std::collections::BTreeSet::new();
        for b in &data {
            seen.insert(*b);
        }
        assert!(seen.len() <= DETAIL_COLORS.len() + 1, "{} colors", seen.len());
    }

    #[test]
    fn compresses_much_better_than_text() {
        // Table II: DE map 33.9 % vs C files 54.8 % under serial LZSS.
        let config = culzss_lzss::LzssConfig::dipperstein();
        for seed in [25u64, 1234, 777] {
            let map = generate(256 * 1024, seed);
            let ratio = culzss_lzss::serial::compress(&map, &config).unwrap().len() as f64
                / map.len() as f64;
            assert!((0.24..=0.44).contains(&ratio), "seed {seed}: ratio {ratio}");
        }
    }

    #[test]
    fn small_window_costs_little_here() {
        // The dataset's defining property in Table II: the CULZSS 128-byte
        // window compresses DRG-like data almost as well as the 4096-byte
        // serial window, because the redundancy is horizontal runs and
        // short-period dither.
        let map = generate(256 * 1024, 4242);
        let ratio = |cfg: &culzss_lzss::LzssConfig| {
            culzss_lzss::serial::compress(&map, cfg).unwrap().len() as f64 / map.len() as f64
        };
        let serial = ratio(&culzss_lzss::LzssConfig::dipperstein());
        let narrow = ratio(&culzss_lzss::LzssConfig::culzss_v1());
        assert!(narrow >= serial, "narrow {narrow} vs serial {serial}");
        assert!(narrow < serial * 1.35, "narrow {narrow} vs serial {serial}");
    }
}
