//! The paper's reported numbers, transcribed for side-by-side reports.
//!
//! Tables I–III of Ozsoy & Swany, CLUSTER 2011, for 128 MB inputs on an
//! Intel Core i7 920 + GeForce GTX 480. The repro harness prints these next
//! to measured/simulated values so deviations are visible per cell.

use crate::registry::Dataset;

/// One row of Table I (compression times, seconds, 128 MB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Dataset.
    pub dataset: Dataset,
    /// Serial LZSS.
    pub serial: f64,
    /// Pthread LZSS.
    pub pthread: f64,
    /// BZIP2 program.
    pub bzip2: f64,
    /// CULZSS Version 1.
    pub v1: f64,
    /// CULZSS Version 2.
    pub v2: f64,
}

/// Table I — compression benchmark average running times (seconds).
pub const TABLE1: [Table1Row; 5] = [
    Table1Row {
        dataset: Dataset::CFiles,
        serial: 50.58,
        pthread: 9.12,
        bzip2: 20.97,
        v1: 7.28,
        v2: 4.26,
    },
    Table1Row {
        dataset: Dataset::DeMap,
        serial: 30.75,
        pthread: 6.25,
        bzip2: 9.14,
        v1: 4.69,
        v2: 15.00,
    },
    Table1Row {
        dataset: Dataset::Dictionary,
        serial: 56.91,
        pthread: 9.35,
        bzip2: 20.18,
        v1: 7.13,
        v2: 3.22,
    },
    Table1Row {
        dataset: Dataset::KernelTarball,
        serial: 50.49,
        pthread: 9.16,
        bzip2: 20.45,
        v1: 7.08,
        v2: 4.79,
    },
    Table1Row {
        dataset: Dataset::HighlyCompressible,
        serial: 4.23,
        pthread: 1.2,
        bzip2: 77.82,
        v1: 0.49,
        v2: 3.40,
    },
];

/// One row of Table II (compression ratios, smaller is better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Dataset.
    pub dataset: Dataset,
    /// Serial LZSS ratio (compressed/uncompressed).
    pub serial: f64,
    /// BZIP2 ratio.
    pub bzip2: f64,
    /// CULZSS V1 ratio.
    pub v1: f64,
    /// CULZSS V2 ratio.
    pub v2: f64,
}

/// Table II — compression ratios (fractions of the input size).
pub const TABLE2: [Table2Row; 5] = [
    Table2Row { dataset: Dataset::CFiles, serial: 0.5480, bzip2: 0.1560, v1: 0.5570, v2: 0.6349 },
    Table2Row { dataset: Dataset::DeMap, serial: 0.3390, bzip2: 0.1180, v1: 0.3420, v2: 0.3335 },
    Table2Row {
        dataset: Dataset::Dictionary,
        serial: 0.6140,
        bzip2: 0.3450,
        v1: 0.6180,
        v2: 0.6509,
    },
    Table2Row {
        dataset: Dataset::KernelTarball,
        serial: 0.5510,
        bzip2: 0.1690,
        v1: 0.5650,
        v2: 0.6259,
    },
    Table2Row {
        dataset: Dataset::HighlyCompressible,
        serial: 0.1350,
        bzip2: 0.0040,
        v1: 0.1390,
        v2: 0.0634,
    },
];

/// One row of Table III (decompression times, seconds, 128 MB).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Dataset.
    pub dataset: Dataset,
    /// Serial LZSS decompression.
    pub serial: f64,
    /// CULZSS (GPU) decompression.
    pub culzss: f64,
}

/// Table III — decompression benchmark average running times (seconds).
pub const TABLE3: [Table3Row; 5] = [
    Table3Row { dataset: Dataset::CFiles, serial: 1.79, culzss: 0.53 },
    Table3Row { dataset: Dataset::DeMap, serial: 1.21, culzss: 0.49 },
    Table3Row { dataset: Dataset::Dictionary, serial: 2.02, culzss: 0.55 },
    Table3Row { dataset: Dataset::KernelTarball, serial: 1.77, culzss: 0.56 },
    Table3Row { dataset: Dataset::HighlyCompressible, serial: 0.71, culzss: 0.27 },
];

/// Input size the paper's absolute numbers refer to.
pub const PAPER_INPUT_BYTES: usize = 128 << 20;

/// Looks up the Table I row for `dataset`.
pub fn table1(dataset: Dataset) -> &'static Table1Row {
    TABLE1.iter().find(|r| r.dataset == dataset).expect("all datasets present")
}

/// Looks up the Table II row for `dataset`.
pub fn table2(dataset: Dataset) -> &'static Table2Row {
    TABLE2.iter().find(|r| r.dataset == dataset).expect("all datasets present")
}

/// Looks up the Table III row for `dataset`.
pub fn table3(dataset: Dataset) -> &'static Table3Row {
    TABLE3.iter().find(|r| r.dataset == dataset).expect("all datasets present")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_cover_all_datasets() {
        for d in Dataset::ALL {
            assert_eq!(table1(d).dataset, d);
            assert_eq!(table2(d).dataset, d);
            assert_eq!(table3(d).dataset, d);
        }
    }

    #[test]
    fn headline_speedups_match_the_abstract() {
        // "outperforms the serial CPU LZSS implementation by up to 18x".
        let best_serial_speedup =
            TABLE1.iter().map(|r| r.serial / r.v2.min(r.v1)).fold(0.0f64, f64::max);
        assert!(best_serial_speedup > 15.0, "{best_serial_speedup}");

        // "the parallel threaded version up to 3x".
        let best_pthread_speedup = TABLE1.iter().map(|r| r.pthread / r.v2).fold(0.0f64, f64::max);
        assert!((2.0..3.5).contains(&best_pthread_speedup), "{best_pthread_speedup}");

        // "the BZIP2 program by up to 6x ... on the general data sets".
        let c = table1(Dataset::CFiles);
        assert!((4.0..6.5).contains(&(c.bzip2 / c.v2)));
    }

    #[test]
    fn v2_loses_exactly_where_the_paper_says() {
        // §V: V2 beats Pthread everywhere except DE map & highly compr.
        for r in &TABLE1 {
            let v2_wins = r.v2 < r.pthread;
            let expected = !matches!(r.dataset, Dataset::DeMap | Dataset::HighlyCompressible);
            assert_eq!(v2_wins, expected, "{:?}", r.dataset);
        }
    }

    #[test]
    fn table2_signature_inversions() {
        // V1 ≈ serial everywhere; V2 worse on text but better on DE map
        // and highly compressible.
        for r in &TABLE2 {
            assert!((r.v1 - r.serial).abs() < 0.02, "{:?}", r.dataset);
        }
        assert!(table2(Dataset::CFiles).v2 > table2(Dataset::CFiles).serial);
        assert!(
            table2(Dataset::HighlyCompressible).v2 < table2(Dataset::HighlyCompressible).serial
        );
        assert!(table2(Dataset::DeMap).v2 < table2(Dataset::DeMap).serial);
    }
}
