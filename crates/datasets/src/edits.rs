//! The incremental-edits corpus: a base snapshot plus seeded
//! generations of small edits, modelling served traffic dominated by
//! repeated or slightly-changed payloads (incremental backups, document
//! revisions).
//!
//! Each generation applies, deterministically from `(seed, generation)`:
//!
//! * a handful of **point edits** — single bytes XOR-ed with a non-zero
//!   value at random positions;
//! * one **aligned delete** and one **aligned insert** of a fresh
//!   [`ALIGN`]-byte block at [`ALIGN`]-aligned offsets, so the total
//!   length never changes and downstream content keeps its alignment
//!   relative to the container chunk grid (a misaligned insert would
//!   shift the grid itself, which no byte-valid dedup layer survives —
//!   see `culzss_dedup::chunker`).
//!
//! The edit distance between consecutive generations is therefore small
//! and controlled: a dedup front end should serve the overwhelming
//! majority of a warm generation from cache.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{c_source, Dataset};

/// Block granularity of inserts and deletes — the paper's container
/// chunk size, so block edits keep the chunk grid intact.
pub const ALIGN: usize = 4096;

/// Generation `generation` of the corpus: exactly `len` bytes.
/// Generation 0 is the base snapshot; generation `g` is generation
/// `g - 1` with one seeded edit batch applied. Same `(len, seed,
/// generation)` ⇒ same bytes.
pub fn snapshot(len: usize, seed: u64, generation: u32) -> Vec<u8> {
    // Kernel-tarball base: the most backup-like of the paper corpora
    // (source tree + binary blobs in archive framing).
    let mut data = Dataset::KernelTarball.generate(len, seed ^ 0xED17_BA5E);
    for gen in 1..=generation {
        apply_generation(&mut data, seed, gen);
    }
    data
}

/// One-generation convenience: the shape [`Dataset::generate`] uses.
pub fn generate(len: usize, seed: u64) -> Vec<u8> {
    snapshot(len, seed, 1)
}

/// Applies generation `gen`'s edit batch to `data` in place. Length is
/// preserved (the delete and the insert cancel out).
fn apply_generation(data: &mut Vec<u8>, seed: u64, gen: u32) {
    let len = data.len();
    if len == 0 {
        return;
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xED17 ^ (u64::from(gen) << 32));

    // Point edits: ~one per 64 KiB, at least 2, at most 64.
    let points = (len / (64 * 1024)).clamp(2, 64);
    for _ in 0..points {
        let at = rng.gen_range(0..len);
        data[at] ^= rng.gen_range(1..=255u8);
    }

    // One aligned block delete + one aligned block insert.
    let blocks = len / ALIGN;
    if blocks >= 2 {
        let delete_at = rng.gen_range(0..blocks) * ALIGN;
        data.drain(delete_at..delete_at + ALIGN);
        let insert_at = rng.gen_range(0..=data.len() / ALIGN) * ALIGN;
        let fresh = c_source::generate(ALIGN, seed ^ u64::from(gen) ^ 0xB10C_B10C);
        data.splice(insert_at..insert_at, fresh);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_are_deterministic_and_exact_length() {
        for generation in [0, 1, 5] {
            let a = snapshot(100_000, 42, generation);
            let b = snapshot(100_000, 42, generation);
            assert_eq!(a.len(), 100_000, "generation {generation}");
            assert_eq!(a, b, "generation {generation} not deterministic");
        }
    }

    #[test]
    fn generation_zero_is_the_base_and_later_ones_differ() {
        let g0 = snapshot(256 * 1024, 7, 0);
        let g1 = snapshot(256 * 1024, 7, 1);
        let g2 = snapshot(256 * 1024, 7, 2);
        assert_ne!(g0, g1);
        assert_ne!(g1, g2);
        // Prefix property: generation g re-derives through g-1, so the
        // chain is consistent (g2 built on g1, not independently).
        let mut rebuilt = g1.clone();
        apply_generation(&mut rebuilt, 7, 2);
        assert_eq!(rebuilt, g2);
    }

    #[test]
    fn consecutive_generations_are_mostly_identical_content() {
        let len = 512 * 1024;
        let g1 = snapshot(len, 3, 1);
        let g2 = snapshot(len, 3, 2);
        // Count ALIGN-blocks of g2 whose exact content appears in g1 —
        // the signal a dedup cache keys on.
        let set: std::collections::HashSet<&[u8]> = g1.chunks_exact(ALIGN).collect();
        let reused = g2.chunks_exact(ALIGN).filter(|b| set.contains(*b)).count();
        let total = len / ALIGN;
        assert!(reused * 10 >= total * 8, "only {reused}/{total} blocks survived one generation");
    }

    #[test]
    fn tiny_inputs_do_not_panic() {
        assert_eq!(snapshot(0, 1, 3).len(), 0);
        assert_eq!(snapshot(1, 1, 3).len(), 1);
        assert_eq!(snapshot(ALIGN + 1, 1, 3).len(), ALIGN + 1);
    }
}
