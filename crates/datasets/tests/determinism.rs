//! Pins the generators' exact output: same seed ⇒ byte-identical
//! corpus, across releases and machines. The checked-in CRC-32s fail
//! loudly if a generator's byte stream ever drifts — which would
//! silently invalidate bench baselines and dedup cache keys.

use culzss_datasets::mixer::{Component, Mixer};
use culzss_datasets::{edits, Dataset};
use culzss_lzss::crc::crc32;

/// `(slug, CRC-32 of 64 KiB at seed 2026)` for every corpus. These are
/// content pins, not checksums-of-convenience: changing a generator's
/// byte stream is a breaking change (bench baselines, golden container
/// fixtures, and dedup cache keys all depend on it) and must be done
/// deliberately, updating this table in the same commit.
const CORPUS_PINS: [(&str, u32); 6] = [
    ("c-files", 0xa988_0712),
    ("de-map", 0xbf9a_d8b8),
    ("dictionary", 0xea30_ddfa),
    ("kernel-tarball", 0x008b_2ba1),
    ("highly-compressible", 0x066a_f713),
    ("incremental-edits", 0x0e1b_2fef),
];

#[test]
fn every_corpus_matches_its_checked_in_content_hash() {
    assert_eq!(Dataset::EVERY.len(), CORPUS_PINS.len(), "new corpus? add its pin");
    for (dataset, (slug, pin)) in Dataset::EVERY.into_iter().zip(CORPUS_PINS) {
        assert_eq!(dataset.slug(), slug, "pin table out of order");
        let crc = crc32(&dataset.generate(64 * 1024, 2026));
        assert_eq!(crc, pin, "{slug} drifted: generated {crc:#010x}, pinned {pin:#010x}");
    }
}

#[test]
fn mixer_output_matches_its_checked_in_content_hash() {
    let mixed = Mixer::datacenter().generate(128 * 1024, 9);
    assert_eq!(mixed.len(), 128 * 1024);
    assert_eq!(crc32(&mixed), 0x4b97_bc75, "datacenter mix drifted");
    // And the general determinism property, independent of the pin.
    assert_eq!(mixed, Mixer::datacenter().generate(128 * 1024, 9));
    let custom = Mixer::new(vec![
        Component { dataset: Dataset::DeMap, weight: 1.0 },
        Component { dataset: Dataset::Dictionary, weight: 2.0 },
    ])
    .with_segment_bytes(8 * 1024);
    assert_eq!(custom.generate(64 * 1024, 5), custom.generate(64 * 1024, 5));
}

#[test]
fn incremental_edit_generations_match_their_checked_in_content_hash() {
    let g3 = edits::snapshot(128 * 1024, 11, 3);
    assert_eq!(crc32(&g3), 0xcba0_2545, "edits generation chain drifted");
    assert_eq!(g3, edits::snapshot(128 * 1024, 11, 3));
    // Different seeds and different generations both change content.
    assert_ne!(crc32(&edits::snapshot(128 * 1024, 12, 3)), 0xcba0_2545);
    assert_ne!(crc32(&edits::snapshot(128 * 1024, 11, 2)), 0xcba0_2545);
}
