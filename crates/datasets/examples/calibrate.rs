//! Prints the serial-LZSS compression ratio of every generated corpus at a
//! few sizes and seeds — the tool used to calibrate the generators against
//! Table II of the paper.
//!
//! ```text
//! cargo run --release -p culzss-datasets --example calibrate
//! ```

use culzss_datasets::Dataset;
use culzss_lzss::{serial, LzssConfig};

fn main() {
    let serial_cfg = LzssConfig::dipperstein();
    let v1_cfg = LzssConfig::culzss_v1();
    let v2_cfg = LzssConfig::culzss_v2();
    println!(
        "{:<22}{:>10}{:>8}{:>9}{:>9}{:>9}   paper(serial,v1,v2)",
        "dataset", "bytes", "seed", "serial", "v1cfg", "v2cfg"
    );
    for dataset in Dataset::ALL {
        let paper = culzss_datasets::paper::table2(dataset);
        for &(len, seed) in &[(192 * 1024, 1234u64), (256 * 1024, 25), (512 * 1024, 777)] {
            let data = dataset.generate(len, seed);
            let ratio = |cfg: &LzssConfig| {
                serial::compress(&data, cfg).expect("compress").len() as f64 / data.len() as f64
            };
            println!(
                "{:<22}{:>10}{:>8}{:>9.4}{:>9.4}{:>9.4}   ({:.3}, {:.3}, {:.3})",
                dataset.slug(),
                len,
                seed,
                ratio(&serial_cfg),
                ratio(&v1_cfg),
                ratio(&v2_cfg),
                paper.serial,
                paper.v1,
                paper.v2,
            );
        }
    }
}
