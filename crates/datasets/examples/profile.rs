//! Prints the match-distance histogram of each corpus under the serial
//! LZSS configuration — the diagnostic behind the generator calibration
//! (how much of the redundancy is reachable by a 128-byte window).

use culzss_datasets::Dataset;
use culzss_lzss::{analyze, LzssConfig};

fn main() {
    let config = LzssConfig::dipperstein();
    println!(
        "{:<22}{:>7}{:>7}{:>7}{:>7}{:>8}{:>8}{:>8}{:>8}",
        "dataset", "<=16", "<=32", "<=64", "<=128", "<=1024", "<=4096", "cover", "shortcov"
    );
    for dataset in Dataset::ALL {
        let data = dataset.generate(256 * 1024, 1234);
        let p = analyze::profile(&data, &config);
        let h = p.distance_histogram;
        println!(
            "{:<22}{:>7}{:>7}{:>7}{:>7}{:>8}{:>8}{:>8.3}{:>8.3}",
            dataset.slug(),
            h[0],
            h[1],
            h[2],
            h[3],
            h[4],
            h[5],
            p.match_cover(),
            p.short_range_cover,
        );
    }
}
