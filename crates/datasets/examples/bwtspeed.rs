//! Compares BWT backend throughput per dataset — used to pick the
//! era-faithful comparison sorter for the Table I bzip2 baseline.
fn main() {
    for d in culzss_datasets::Dataset::ALL {
        let data = d.generate(2 << 20, 1);
        for (n, b) in [
            ("sais", culzss_bzip2::bwt::Backend::SaIs),
            ("doubling", culzss_bzip2::bwt::Backend::Doubling),
        ] {
            let t = std::time::Instant::now();
            let c = culzss_bzip2::compress_with(&data, 900_000, b).unwrap();
            println!(
                "{:<22}{n:<10}{:>10.3}s -> {} bytes",
                d.slug(),
                t.elapsed().as_secs_f64(),
                c.len()
            );
        }
    }
}
