//! Pins the buffer-pool arena's payoff: a reused [`Culzss`] instance
//! allocates strictly less on its second compress than on its first,
//! because the pipeline's device/host staging buffers come back from
//! the arena instead of the allocator.
//!
//! The bench *library* is `forbid(unsafe_code)`, so the counting
//! allocator lives here in the test crate (same seam as the `bench`
//! binary). Run with `--nocapture` to see the measured cold/warm
//! deltas — EXPERIMENTS.md quotes them.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use culzss::{Culzss, Version};
use culzss_datasets::Dataset;

struct CountingAlloc;

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        ALLOC_COUNT.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Relaxed);
        ALLOC_COUNT.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn probe() -> (u64, u64) {
    (ALLOC_BYTES.load(Relaxed), ALLOC_COUNT.load(Relaxed))
}

fn deltas(version: Version, data: &[u8]) -> [(u64, u64); 3] {
    let engine = Culzss::new(version);
    let mut out = [(0, 0); 3];
    let mut reference = None;
    for slot in &mut out {
        let (bytes0, count0) = probe();
        let (stream, _) = engine.compress(data).expect("compress");
        let (bytes1, count1) = probe();
        *slot = (bytes1 - bytes0, count1 - count0);
        match &reference {
            None => reference = Some(stream),
            Some(first) => assert_eq!(first, &stream, "reuse changed the byte stream"),
        }
    }
    out
}

#[test]
fn reused_engine_allocates_less_than_cold_and_is_byte_identical() {
    let data = Dataset::KernelTarball.generate(256 << 10, 0xC0DE_2011);
    for version in [Version::V1, Version::V2] {
        let [cold, warm1, warm2] = deltas(version, &data);
        println!(
            "{version:?}: cold {} B / {} allocs; warm {} B / {} allocs; steady {} B / {} allocs",
            cold.0, cold.1, warm1.0, warm1.1, warm2.0, warm2.1
        );
        assert!(
            warm1.0 < cold.0 && warm1.1 < cold.1,
            "{version:?}: warm pass should allocate less than cold \
             (cold {cold:?}, warm {warm1:?})"
        );
        assert!(
            warm2.0 <= warm1.0,
            "{version:?}: steady state should not regrow ({warm1:?} -> {warm2:?})"
        );
    }
}
