//! Differential pin: the hash-chain match finder must stay *byte-identical*
//! to brute force — not just same-length matches, the same compressed
//! stream — across every preset, every evaluation corpus, and the window
//! boundary edges. This is the contract that lets `FinderKind::auto_exact`
//! substitute the hash chain on CPU hot paths without changing any golden
//! fixture.

use culzss_datasets::Dataset;
use culzss_lzss::matchfind::FinderKind;
use culzss_lzss::serial::{compress_with, decompress, Tokenizer};
use culzss_lzss::LzssConfig;

fn presets() -> [LzssConfig; 3] {
    [LzssConfig::dipperstein(), LzssConfig::culzss_v1(), LzssConfig::culzss_v2()]
}

fn assert_identical(data: &[u8], config: &LzssConfig, what: &str) {
    let brute = compress_with(data, config, FinderKind::BruteForce).expect("brute");
    let hash = compress_with(data, config, FinderKind::HashChain).expect("hash");
    assert_eq!(brute, hash, "stream diverged: {what}");
    assert_eq!(decompress(&hash, config).expect("decode"), data, "round trip: {what}");
}

#[test]
fn hash_chain_is_byte_identical_on_every_corpus() {
    for dataset in Dataset::ALL {
        let data = dataset.generate(48 * 1024, 0xD1FF);
        for config in presets() {
            assert_identical(
                &data,
                &config,
                &format!("{} window {}", dataset.slug(), config.window_size),
            );
        }
    }
}

#[test]
fn hash_chain_is_byte_identical_at_window_edges() {
    // 0 and 1 byte: degenerate inputs; 4096 and 4097: exactly one
    // dipperstein window, and one byte past it (first eviction).
    let base = Dataset::Dictionary.generate(8 * 1024, 42);
    for len in [0usize, 1, 4096, 4097] {
        for config in presets() {
            assert_identical(
                &base[..len],
                &config,
                &format!("len {len} window {}", config.window_size),
            );
        }
    }
    // Same edges relative to the CULZSS 128-byte window.
    for len in [127usize, 128, 129] {
        for config in presets() {
            assert_identical(
                &base[..len],
                &config,
                &format!("len {len} window {}", config.window_size),
            );
        }
    }
}

#[test]
fn reused_tokenizer_matches_one_shot_across_corpora() {
    // The pooled pipelines reuse one Tokenizer across many chunks; a
    // stale hash chain would silently change the stream. Feed the same
    // Tokenizer every corpus back-to-back and compare with fresh runs.
    for config in presets() {
        let mut tokenizer = Tokenizer::new(&config);
        for dataset in Dataset::ALL {
            let data = dataset.generate(16 * 1024, 7);
            let mut body = Vec::new();
            tokenizer.compress_chunk_into(&data, &config, &mut body);
            // compress_chunk_into emits a bare body (no stream header):
            // compare against a fresh tokenize + encode.
            let tokens =
                culzss_lzss::serial::tokenize_with(&data, &config, FinderKind::auto_exact(&config));
            let fresh = culzss_lzss::format::encode(&tokens, &config);
            assert_eq!(body, fresh, "{} window {}", dataset.slug(), config.window_size);
        }
    }
}
