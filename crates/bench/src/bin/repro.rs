//! `repro` — regenerates every table and figure of the CULZSS paper.
//!
//! ```text
//! cargo run --release -p culzss-bench --bin repro -- all --size-mb 4
//! cargo run --release -p culzss-bench --bin repro -- table1
//! cargo run --release -p culzss-bench --bin repro -- figure4 --size-mb 8 --reps 3
//! cargo run --release -p culzss-bench --bin repro -- sweep-threads
//! ```
//!
//! Each command prints the paper's numbers next to ours. Time columns
//! are scaled to the paper's 128 MB inputs (see `culzss-bench` docs for
//! the methodology); ratio columns are exact.

use culzss::{pipeline, tuning, Culzss, CulzssParams, Version};
use culzss_bench::*;
use culzss_datasets::{paper, Dataset};
use culzss_gpusim::DeviceSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = MeasureCfg::default();
    let mut command = String::from("all");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--size-mb" => {
                i += 1;
                cfg.bytes = args[i].parse::<usize>().expect("--size-mb N") << 20;
            }
            "--reps" => {
                i += 1;
                cfg.reps = args[i].parse().expect("--reps N");
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed N");
            }
            other if !other.starts_with("--") => command = other.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!(
        "# CULZSS reproduction — {} MiB per dataset, {} rep(s), seed {:#x}",
        cfg.bytes >> 20,
        cfg.reps,
        cfg.seed
    );
    println!("# times scaled to the paper's 128 MB inputs\n");

    match command.as_str() {
        "table1" => table1(&measure_rows(cfg)),
        "table2" => table2(cfg),
        "table3" => table3(cfg),
        "figure4" => figure4(&measure_rows(cfg)),
        "ablation-shared" => ablation_shared(cfg),
        "sweep-threads" => sweep_threads(cfg),
        "sweep-window" => sweep_window(cfg),
        "overlap" => overlap(cfg),
        "selfcheck" => selfcheck(cfg),
        "hetero-sweep" => hetero_sweep(cfg),
        "all" => {
            let rows = measure_rows(cfg);
            table1(&rows);
            table2(cfg);
            table3(cfg);
            figure4(&rows);
            ablation_shared(cfg);
            sweep_threads(cfg);
            sweep_window(cfg);
            overlap(cfg);
            selfcheck(cfg);
            hetero_sweep(cfg);
        }
        other => {
            eprintln!(
                "unknown command {other}; expected one of: table1 table2 table3 \
                 figure4 ablation-shared sweep-threads sweep-window overlap selfcheck \
                 hetero-sweep all"
            );
            std::process::exit(2);
        }
    }
}

fn measure_rows(cfg: MeasureCfg) -> Vec<Table1Measured> {
    Dataset::ALL.iter().map(|&d| measure_table1_row(d, cfg)).collect()
}

fn table1(rows: &[Table1Measured]) {
    println!("## Table I — compression times (seconds; paper → measured)\n");
    println!(
        "{:<16}{:>18}{:>18}{:>18}{:>18}{:>18}",
        "dataset", "Serial LZSS", "Pthread LZSS", "BZIP2", "CULZSS V1", "CULZSS V2"
    );
    for m in rows {
        let dataset = m.dataset;
        let p = paper::table1(dataset);
        let cell = |paper: f64, ours: f64| format!("{paper:>7.2} → {ours:>7.2}");
        println!(
            "{:<16}{:>18}{:>18}{:>18}{:>18}{:>18}",
            dataset.paper_label(),
            cell(p.serial, m.serial),
            cell(p.pthread, m.pthread),
            cell(p.bzip2, m.bzip2),
            cell(p.v1, m.v1),
            cell(p.v2, m.v2),
        );
    }
    println!();
}

fn table2(cfg: MeasureCfg) {
    println!("## Table II — compression ratios (smaller is better; paper → measured)\n");
    println!("{:<16}{:>18}{:>18}{:>18}{:>18}", "dataset", "Serial", "BZIP2", "V1", "V2");
    for dataset in Dataset::ALL {
        let m = measure_table2_row(dataset, cfg);
        let p = paper::table2(dataset);
        let cell =
            |paper: f64, ours: f64| format!("{:>6.1}% → {:>5.1}%", paper * 100.0, ours * 100.0);
        println!(
            "{:<16}{:>18}{:>18}{:>18}{:>18}",
            dataset.paper_label(),
            cell(p.serial, m.serial),
            cell(p.bzip2, m.bzip2),
            cell(p.v1, m.v1),
            cell(p.v2, m.v2),
        );
    }
    println!();
}

fn table3(cfg: MeasureCfg) {
    println!("## Table III — decompression times (seconds; paper → measured)\n");
    println!("{:<16}{:>18}{:>18}{:>12}", "dataset", "Serial LZSS", "CULZSS", "speedup");
    for dataset in Dataset::ALL {
        let m = measure_table3_row(dataset, cfg);
        let p = paper::table3(dataset);
        println!(
            "{:<16}{:>8.2} → {:>6.3}{:>8.2} → {:>6.3}{:>11.2}x",
            dataset.paper_label(),
            p.serial,
            m.serial,
            p.culzss,
            m.culzss,
            m.serial / m.culzss,
        );
    }
    println!();
}

fn bar(x: f64, per_char: f64) -> String {
    let n = (x / per_char).round().clamp(0.0, 60.0) as usize;
    "█".repeat(n.max(usize::from(x > 0.0)))
}

fn figure4(rows: &[Table1Measured]) {
    println!("## Figure 4 — speedup over serial LZSS (paper → measured)\n");
    println!(
        "{:<16}{:>16}{:>16}{:>16}{:>16}",
        "dataset", "Pthread", "BZIP2", "CULZSS V1", "CULZSS V2"
    );
    for m in rows {
        let dataset = m.dataset;
        let fig = Figure4Row::from_table1(m);
        let p = paper::table1(dataset);
        let cell = |paper: f64, ours: f64| format!("{paper:>5.1}x → {ours:>5.1}x");
        println!(
            "{:<16}{:>16}{:>16}{:>16}{:>16}",
            dataset.paper_label(),
            cell(p.serial / p.pthread, fig.pthread),
            cell(p.serial / p.bzip2, fig.bzip2),
            cell(p.serial / p.v1, fig.v1),
            cell(p.serial / p.v2, fig.v2),
        );
    }
    // The figure itself, as ASCII bars (log-ish scale: 1 char ≈ 1×,
    // GPU bars capped at 60 chars).
    println!("\nmeasured speedup bars (1 char ≈ 1×; capped at 60):");
    for m in rows {
        let fig = Figure4Row::from_table1(m);
        println!("  {:<16}", m.dataset.paper_label());
        for (name, v) in
            [("pthread", fig.pthread), ("bzip2", fig.bzip2), ("v1", fig.v1), ("v2", fig.v2)]
        {
            println!("    {name:<8}{:>8.1}x |{}", v, bar(v, 1.0));
        }
    }
    println!();
}

fn ablation_shared(cfg: MeasureCfg) {
    println!("## §III-D ablation — V1 shared-memory buffers vs (cached) global\n");
    println!("paper: \"allowed us a 30% speed up over the global memory implementation\"\n");
    let data = Dataset::CFiles.generate(cfg.bytes, cfg.seed);
    let device = DeviceSpec::gtx480();
    let mut global = CulzssParams::v1();
    global.use_shared_memory = false;

    let run = |params: CulzssParams| {
        let culzss = Culzss::with_device(device.clone(), params);
        let (_, stats) = culzss.compress(&data).unwrap();
        stats.launch.unwrap().cost.work_cycles / device.sm_count as f64 / device.clock_hz
            * cfg.scale()
    };
    let shared_s = run(CulzssParams::v1());
    let global_s = run(global);
    println!("shared-memory windows : {shared_s:>8.3} s (kernel, scaled)");
    println!("global-memory windows : {global_s:>8.3} s (kernel, scaled)");
    println!("speedup from shared   : {:>8.1} %\n", (global_s / shared_s - 1.0) * 100.0);
}

fn sweep_threads(cfg: MeasureCfg) {
    println!("## §III-D sweep — threads per block (paper: 128 is best)\n");
    let data = Dataset::CFiles.generate(cfg.bytes.min(4 << 20), cfg.seed);
    let device = DeviceSpec::gtx480();
    for version in [Version::V1, Version::V2] {
        println!("{}:", version.name());
        let points = tuning::sweep_threads(&device, version, &data, &[32, 64, 128, 256, 512]);
        for p in points {
            match p.gpu_seconds {
                Some(s) => println!("  {:>4} threads/block: {:>9.4} s (gpu, unscaled)", p.value, s),
                None => println!(
                    "  {:>4} threads/block: infeasible (shared memory / device limits)",
                    p.value
                ),
            }
        }
    }
    println!();
}

fn sweep_window(cfg: MeasureCfg) {
    println!("## §III-D sweep — window size (paper: 128 B best point)\n");
    let data = Dataset::CFiles.generate(cfg.bytes.min(4 << 20), cfg.seed);
    let device = DeviceSpec::gtx480();
    let points = tuning::sweep_window(&device, Version::V2, &data, &[32, 64, 128, 256, 512]);
    for p in points {
        match (p.gpu_seconds, p.ratio) {
            (Some(s), Some(r)) => println!(
                "  window {:>4} B: {:>9.4} s (gpu, unscaled), ratio {:>5.1}%",
                p.value,
                s,
                r * 100.0
            ),
            _ => println!("  window {:>4} B: infeasible (16-bit code limit)", p.value),
        }
    }
    println!();
}

fn hetero_sweep(cfg: MeasureCfg) {
    use culzss::hetero::HeteroCompressor;
    println!("## §VII extension — heterogeneous CPU+GPU split (V1, C files)\n");
    let data = Dataset::CFiles.generate(cfg.bytes.min(2 << 20), cfg.seed);
    let make = || Culzss::new(Version::V1);
    for fraction in [0.0f64, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let hetero = HeteroCompressor::new(make(), fraction, 8);
        let (_, stats) = hetero.compress(&data).unwrap();
        println!(
            "  cpu share {:>4.0}%: cpu {:>8.2} ms | gpu {:>8.2} ms | total {:>8.2} ms",
            fraction * 100.0,
            stats.cpu_seconds * 1e3,
            stats.gpu_seconds * 1e3,
            stats.total_seconds() * 1e3,
        );
    }
    let auto = HeteroCompressor::new(make(), 0.5, 8)
        .auto_balance(&data[..data.len().min(256 * 1024)])
        .unwrap();
    let share = auto.cpu_fraction();
    let (_, stats) = auto.compress(&data).unwrap();
    println!(
        "  auto-balanced {:>4.0}%: cpu {:>8.2} ms | gpu {:>8.2} ms | total {:>8.2} ms\n",
        share * 100.0,
        stats.cpu_seconds * 1e3,
        stats.gpu_seconds * 1e3,
        stats.total_seconds() * 1e3,
    );
}

fn selfcheck(cfg: MeasureCfg) {
    println!("## corpus self-check — generator statistics vs. paper expectations\n");
    println!(
        "{:<22}{:>9}{:>10}{:>12}{:>18}{:>8}",
        "dataset", "entropy", "alphabet", "period", "serial ratio", "band"
    );
    let config = culzss_lzss::LzssConfig::dipperstein();
    for dataset in Dataset::ALL {
        let data = dataset.generate(cfg.bytes.min(1 << 20), cfg.seed);
        let profile = culzss_datasets::stats::profile(&data);
        let ratio =
            culzss_lzss::serial::compress(&data, &config).unwrap().len() as f64 / data.len() as f64;
        let paper = paper::table2(dataset).serial;
        // Generous band: within 0.15 absolute of the paper's serial ratio.
        let ok = (ratio - paper).abs() < 0.15;
        println!(
            "{:<22}{:>9.2}{:>10}{:>12}{:>9.1}% ({:>4.1}%){:>8}",
            dataset.slug(),
            profile.entropy,
            profile.alphabet,
            profile.period.map(|(lag, s)| format!("{lag}@{s:.2}")).unwrap_or_else(|| "-".into()),
            ratio * 100.0,
            paper * 100.0,
            if ok { "PASS" } else { "DRIFT" },
        );
    }
    println!();
}

fn overlap(cfg: MeasureCfg) {
    println!("## §V extension — CPU/GPU overlap (pipelined V2)\n");
    let data = Dataset::CFiles.generate(cfg.bytes, cfg.seed);
    let culzss = Culzss::new(Version::V2);
    let (_, stats) = culzss.compress(&data).unwrap();
    for slices in [1usize, 4, 16, 64] {
        let report = pipeline::overlap(&stats, slices);
        println!(
            "  {:>3} slices: {:>9.4} s → {:>9.4} s  ({:.2}x)",
            slices, report.sequential_seconds, report.pipelined_seconds, report.speedup
        );
    }
    println!();
}
