//! `bench` — machine-readable benchmark runs and the perf-regression gate.
//!
//! ```text
//! # full run, report to BENCH_<timestamp>.json
//! cargo run --release -p culzss-bench --bin bench
//!
//! # CI gate: smoke-sized run, compared against the checked-in baseline
//! cargo run --release -p culzss-bench --bin bench -- --smoke --check \
//!     --baseline BENCH_BASELINE.json
//!
//! # regenerate the baseline itself
//! cargo run --release -p culzss-bench --bin bench -- --smoke \
//!     --out BENCH_BASELINE.json
//! ```
//!
//! Exit codes: 0 = ok, 1 = regression gate failed, 2 = usage/parse error.
//!
//! The report schema and tolerance policy are documented in
//! `culzss_bench::report` and DESIGN.md §12.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{SystemTime, UNIX_EPOCH};

use culzss_bench::report::{Report, Tolerances};
use culzss_bench::suite::{
    run_checked_filtered, run_suite_filtered, AllocProbe, GridFilter, SuiteCfg,
};

/// `System` allocator wrapper that counts every allocation. The bench
/// *library* is `forbid(unsafe_code)`; the counting hooks live here in
/// the binary and reach the library through the [`AllocProbe`] seam.
struct CountingAlloc;

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Relaxed);
        ALLOC_COUNT.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_BYTES.fetch_add(new_size.saturating_sub(layout.size()) as u64, Relaxed);
        ALLOC_COUNT.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const PROBE: AllocProbe = || (ALLOC_BYTES.load(Relaxed), ALLOC_COUNT.load(Relaxed));

const USAGE: &str = "\
usage: bench [--smoke] [--size-mb N] [--reps N] [--seed N] [--out PATH]
             [--engines a,b] [--corpora x,y] [--check --baseline PATH]

  --smoke          CI sizing (256 KiB per corpus, 2 reps)
  --size-mb N      corpus size in MiB (full runs; default 4 or $CULZSS_BENCH_MB)
  --reps N         repetitions per cell, minimum kept
  --seed N         corpus generator seed
  --out PATH       report path (default BENCH_<timestamp>.json)
  --engines a,b    run only these engines (comma-separated ids)
  --corpora x,y    run only these corpora (comma-separated slugs)
  --baseline PATH  baseline report for --check
  --check          gate this run against --baseline; exit 1 on regression
                   (baseline cells outside --engines/--corpora are skipped)";

struct Args {
    cfg: SuiteCfg,
    filter: GridFilter,
    out: Option<String>,
    baseline: Option<String>,
    check: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut smoke = false;
    let mut size_mb = None;
    let mut reps = None;
    let mut seed = None;
    let mut out = None;
    let mut baseline = None;
    let mut check = false;
    let mut engines = None;
    let mut corpora = None;

    fn value<'a>(argv: &'a [String], i: &mut usize, what: &str) -> Result<&'a str, String> {
        *i += 1;
        argv.get(*i).map(String::as_str).ok_or_else(|| format!("{what} needs a value"))
    }

    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--size-mb" => {
                size_mb = Some(
                    value(argv, &mut i, "--size-mb")?
                        .parse::<usize>()
                        .map_err(|e| format!("--size-mb: {e}"))?,
                )
            }
            "--reps" => {
                reps = Some(
                    value(argv, &mut i, "--reps")?
                        .parse::<usize>()
                        .map_err(|e| format!("--reps: {e}"))?,
                )
            }
            "--seed" => {
                seed = Some(
                    value(argv, &mut i, "--seed")?
                        .parse::<u64>()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--out" => out = Some(value(argv, &mut i, "--out")?.to_string()),
            "--engines" => engines = Some(value(argv, &mut i, "--engines")?.to_string()),
            "--corpora" => corpora = Some(value(argv, &mut i, "--corpora")?.to_string()),
            "--baseline" => baseline = Some(value(argv, &mut i, "--baseline")?.to_string()),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }

    let mut cfg = if smoke { SuiteCfg::smoke() } else { SuiteCfg::full() };
    if let Some(mb) = size_mb {
        cfg.bytes = mb.max(1) << 20;
        cfg.smoke = false;
    }
    if let Some(r) = reps {
        cfg.reps = r.max(1);
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if check && baseline.is_none() {
        return Err("--check needs --baseline PATH".into());
    }
    let filter = GridFilter::parse(engines.as_deref(), corpora.as_deref())?;
    Ok(Args { cfg, filter, out, baseline, check })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("bench: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let self_cmd = format!(
        "cargo run --release -p culzss-bench --bin bench --{}{}",
        if argv.is_empty() { "" } else { " " },
        argv.join(" ")
    );
    let commands = vec![self_cmd];

    let cfg = args.cfg;
    eprintln!(
        "bench: {} KiB per corpus, {} rep(s), seed {:#x}{}",
        cfg.bytes / 1024,
        cfg.reps,
        cfg.seed,
        if cfg.smoke { " (smoke)" } else { "" }
    );

    // Load the baseline up front so a bad path fails before the run.
    let baseline = match &args.baseline {
        None => None,
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Report::from_json(&text))
        {
            Ok(baseline) => Some(baseline),
            Err(e) => {
                eprintln!("bench: cannot load baseline {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let tolerances = Tolerances::default();
    let (report, failures) = match (&baseline, args.check) {
        (Some(baseline), true) => {
            run_checked_filtered(&cfg, PROBE, commands, baseline, &tolerances, &args.filter)
        }
        _ => (run_suite_filtered(&cfg, PROBE, commands, &args.filter), Vec::new()),
    };

    let out_path = args.out.unwrap_or_else(|| {
        let stamp = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
        format!("BENCH_{stamp}.json")
    });
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("bench: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    eprintln!("bench: wrote {out_path} ({} cells)", report.cells.len());

    if !args.check {
        return ExitCode::SUCCESS;
    }
    let baseline_path = args.baseline.expect("checked in parse_args");
    let baseline = baseline.expect("loaded above when --check is set");
    if failures.is_empty() {
        eprintln!(
            "bench: gate PASS against {baseline_path} ({} baseline cells, \
             throughput −{:.0} %, ratio ±{}, cycles +{:.0} %)",
            baseline.cells.len(),
            tolerances.throughput_drop_frac * 100.0,
            tolerances.ratio_abs,
            tolerances.cycles_rise_frac * 100.0,
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("bench: gate FAIL against {baseline_path} (after one retry pass):");
        for failure in &failures {
            eprintln!("  {failure}");
        }
        ExitCode::from(1)
    }
}
