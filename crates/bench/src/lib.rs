//! # culzss-bench — measurement harness for the paper's tables & figures
//!
//! The harness runs every implementation on every dataset and reports the
//! paper's tables side-by-side with our numbers:
//!
//! * CPU implementations (serial LZSS, Pthread LZSS, the bzip2-style
//!   baseline) are **measured** wall-clock on this host and scaled
//!   linearly to the paper's 128 MB input size.
//! * CULZSS V1/V2 GPU times come from the **cost model**: per-launch work
//!   cycles are extrapolated to the 128 MB grid (where the GPU is fully
//!   occupied) as `work_cycles × scale / sm_count / clock`, plus modelled
//!   PCIe transfers and the *measured* CPU post-processing scaled
//!   linearly.
//!
//! Absolute numbers therefore mix two machines (this host's CPU vs a
//! modelled GTX 480) exactly like the paper mixed an i7 920 with a real
//! GTX 480; EXPERIMENTS.md discusses comparability. The shapes — who
//! wins per dataset, where V2 collapses, the ~order-of-magnitude GPU
//! advantage — are the reproduction targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod suite;

use std::time::Instant;

use culzss::{Culzss, Version};
use culzss_datasets::paper::PAPER_INPUT_BYTES;
use culzss_datasets::Dataset;
use culzss_gpusim::transfer::transfer_seconds;
use culzss_gpusim::DeviceSpec;
use culzss_lzss::matchfind::FinderKind;
use culzss_lzss::LzssConfig;

/// Harness configuration (dataset size, seed, repetitions).
#[derive(Debug, Clone, Copy)]
pub struct MeasureCfg {
    /// Bytes of each generated dataset.
    pub bytes: usize,
    /// Generator seed.
    pub seed: u64,
    /// Repetitions; the minimum time is kept (the paper averaged 10 runs
    /// on a dedicated testbed; minima are the low-noise equivalent here).
    pub reps: usize,
    /// Match finder for the *measured* CPU baselines. Defaults to the
    /// paper's "straightforward implementation" (brute force), which
    /// preserves Table I's CPU ordering; `CULZSS_FINDER=hash` switches to
    /// the hash-chain search (Dipperstein's accelerated variant), whose
    /// per-core throughput brackets the paper's from the other side. See
    /// EXPERIMENTS.md "CPU baseline bracketing".
    pub finder: FinderKind,
    /// BWT backend for the measured bzip2 baseline. Defaults to the
    /// doubling sorter: like bzip2 1.0's comparison-based block sorter it
    /// slows down dramatically on highly repetitive data, reproducing
    /// Table I's pathological 77.8 s row. `CULZSS_BWT=sais` switches to
    /// the linear-time sorter.
    pub bwt: culzss_bzip2::bwt::Backend,
}

impl Default for MeasureCfg {
    fn default() -> Self {
        let mb = std::env::var("CULZSS_BENCH_MB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(4)
            .max(1);
        let reps = std::env::var("CULZSS_BENCH_REPS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
            .max(1);
        let finder = match std::env::var("CULZSS_FINDER").as_deref() {
            Ok("hash") => FinderKind::HashChain,
            Ok("kmp") => FinderKind::Kmp,
            Ok("tree") => FinderKind::Tree,
            _ => FinderKind::BruteForce,
        };
        let bwt = match std::env::var("CULZSS_BWT").as_deref() {
            Ok("sais") => culzss_bzip2::bwt::Backend::SaIs,
            _ => culzss_bzip2::bwt::Backend::Doubling,
        };
        Self { bytes: mb << 20, seed: 0xC0DE_2011, reps, finder, bwt }
    }
}

impl MeasureCfg {
    /// Linear scale factor from the measured size to the paper's 128 MB.
    pub fn scale(&self) -> f64 {
        PAPER_INPUT_BYTES as f64 / self.bytes as f64
    }
}

/// Times `f` over `reps` runs and returns the minimum seconds.
pub fn time_min<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let started = Instant::now();
        f();
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

/// Worker count of the paper's Pthread baseline: an i7 920 (4 cores / 8
/// hardware threads); Table I's ~5.5× Pthread speedup is consistent with
/// eight workers.
pub const PAPER_PTHREAD_WORKERS: usize = 8;

/// Modelled k-way Pthread LZSS time.
///
/// Benchmark hosts (like this sandbox) may expose a single CPU, where a
/// real threaded run can never show parallel speedup, so the harness
/// models it the same way it models the GPU: each worker's chunk is
/// compressed and timed individually, and the run finishes when the
/// slowest worker finishes (the implementation uses a static partition,
/// exactly like the paper's one-chunk-per-thread scheme).
pub fn modeled_pthread_seconds(
    data: &[u8],
    config: &LzssConfig,
    workers: usize,
    reps: usize,
    finder: FinderKind,
) -> f64 {
    let chunk_size = data.len().div_ceil(workers.max(1)).max(1);
    let mut makespan = 0.0f64;
    for chunk in data.chunks(chunk_size) {
        let t = time_min(reps, || {
            let tokens = culzss_lzss::serial::tokenize_with(chunk, config, finder);
            std::hint::black_box(culzss_lzss::format::encode(&tokens, config));
        });
        makespan = makespan.max(t);
    }
    makespan
}

/// Scaled-to-128MB GPU pipeline seconds for a CULZSS compression run.
///
/// Kernel work is extrapolated by total work cycles over a fully-occupied
/// device; transfers and (measured) CPU post-processing scale linearly.
pub fn scaled_culzss_seconds(
    stats: &culzss::PipelineStats,
    device: &DeviceSpec,
    scale: f64,
) -> f64 {
    let launch = stats.launch.as_ref().expect("compression launches a kernel");
    let kernel = launch.cost.work_cycles * scale / device.sm_count as f64 / device.clock_hz
        + device.launch_overhead;
    let h2d = transfer_seconds(device, (stats.input_bytes as f64 * scale) as usize);
    // D2H volume scales with whatever came back (buckets / match arrays);
    // recompute from scaled bytes so the fixed per-copy latency is not
    // multiplied by the scale factor.
    let d2h_bytes = stats.d2h_seconds.max(0.0) - device.pcie_latency;
    let d2h =
        transfer_seconds(device, ((d2h_bytes * device.pcie_bandwidth).max(0.0) * scale) as usize);
    kernel + h2d + d2h + stats.cpu_seconds * scale
}

/// One measured row of Table I (seconds, scaled to 128 MB).
#[derive(Debug, Clone, Copy)]
pub struct Table1Measured {
    /// Dataset.
    pub dataset: Dataset,
    /// Serial LZSS (measured × scale).
    pub serial: f64,
    /// Pthread LZSS (measured × scale).
    pub pthread: f64,
    /// bzip2-style baseline (measured × scale).
    pub bzip2: f64,
    /// CULZSS V1 (modelled GPU + measured CPU, scaled).
    pub v1: f64,
    /// CULZSS V2 (modelled GPU + measured CPU, scaled).
    pub v2: f64,
}

/// Measures one Table I row.
pub fn measure_table1_row(dataset: Dataset, cfg: MeasureCfg) -> Table1Measured {
    let data = dataset.generate(cfg.bytes, cfg.seed);
    let scale = cfg.scale();
    let serial_cfg = LzssConfig::dipperstein();

    let serial = time_min(cfg.reps, || {
        std::hint::black_box(
            culzss_lzss::serial::compress_with(&data, &serial_cfg, cfg.finder).unwrap(),
        );
    }) * scale;

    let pthread =
        modeled_pthread_seconds(&data, &serial_cfg, PAPER_PTHREAD_WORKERS, cfg.reps, cfg.finder)
            * scale;

    let bzip2 = time_min(cfg.reps, || {
        std::hint::black_box(
            culzss_bzip2::compress_with(&data, culzss_bzip2::BZ_BLOCK_SIZE, cfg.bwt).unwrap(),
        );
    }) * scale;

    let gpu = |version: Version| {
        let culzss = Culzss::new(version);
        let device = culzss.device().clone();
        let (_, stats) = culzss.compress(&data).unwrap();
        scaled_culzss_seconds(&stats, &device, scale)
    };

    Table1Measured { dataset, serial, pthread, bzip2, v1: gpu(Version::V1), v2: gpu(Version::V2) }
}

/// One measured row of Table II (ratios; exact, not scaled).
#[derive(Debug, Clone, Copy)]
pub struct Table2Measured {
    /// Dataset.
    pub dataset: Dataset,
    /// Serial LZSS ratio.
    pub serial: f64,
    /// bzip2-style baseline ratio.
    pub bzip2: f64,
    /// CULZSS V1 ratio.
    pub v1: f64,
    /// CULZSS V2 ratio.
    pub v2: f64,
}

/// Measures one Table II row.
pub fn measure_table2_row(dataset: Dataset, cfg: MeasureCfg) -> Table2Measured {
    let data = dataset.generate(cfg.bytes, cfg.seed);
    let n = data.len() as f64;
    let serial =
        culzss_lzss::serial::compress(&data, &LzssConfig::dipperstein()).unwrap().len() as f64 / n;
    let bzip2 = culzss_bzip2::compress(&data).unwrap().len() as f64 / n;
    let (v1_bytes, _) = culzss::api::gpu_compress(&data, Version::V1).unwrap();
    let (v2_bytes, _) = culzss::api::gpu_compress(&data, Version::V2).unwrap();
    Table2Measured {
        dataset,
        serial,
        bzip2,
        v1: v1_bytes.len() as f64 / n,
        v2: v2_bytes.len() as f64 / n,
    }
}

/// One measured row of Table III (decompression seconds, scaled).
#[derive(Debug, Clone, Copy)]
pub struct Table3Measured {
    /// Dataset.
    pub dataset: Dataset,
    /// Serial LZSS decompression (measured × scale).
    pub serial: f64,
    /// CULZSS GPU decompression (modelled, scaled).
    pub culzss: f64,
}

/// Measures one Table III row.
pub fn measure_table3_row(dataset: Dataset, cfg: MeasureCfg) -> Table3Measured {
    let data = dataset.generate(cfg.bytes, cfg.seed);
    let scale = cfg.scale();
    let serial_cfg = LzssConfig::dipperstein();

    let compressed = culzss_lzss::serial::compress(&data, &serial_cfg).unwrap();
    let serial = time_min(cfg.reps, || {
        std::hint::black_box(culzss_lzss::serial::decompress(&compressed, &serial_cfg).unwrap());
    }) * scale;

    let culzss = Culzss::new(Version::V1);
    let device = culzss.device().clone();
    let (stream, _) = culzss.compress(&data).unwrap();
    let (_, stats) = culzss.decompress(&stream).unwrap();
    let launch = stats.launch.as_ref().expect("decompression launches a kernel");
    let gpu = launch.cost.work_cycles * scale / device.sm_count as f64 / device.clock_hz
        + transfer_seconds(&device, (stream.len() as f64 * scale) as usize)
        + transfer_seconds(&device, (data.len() as f64 * scale) as usize);

    Table3Measured { dataset, serial, culzss: gpu }
}

/// Figure 4: speedups of each implementation against serial LZSS.
#[derive(Debug, Clone, Copy)]
pub struct Figure4Row {
    /// Dataset.
    pub dataset: Dataset,
    /// Pthread speedup over serial.
    pub pthread: f64,
    /// bzip2 speedup over serial.
    pub bzip2: f64,
    /// CULZSS V1 speedup over serial.
    pub v1: f64,
    /// CULZSS V2 speedup over serial.
    pub v2: f64,
}

impl Figure4Row {
    /// Derives the speedup series from a Table I row.
    pub fn from_table1(row: &Table1Measured) -> Self {
        Figure4Row {
            dataset: row.dataset,
            pthread: row.serial / row.pthread,
            bzip2: row.serial / row.bzip2,
            v1: row.serial / row.v1,
            v2: row.serial / row.v2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MeasureCfg {
        MeasureCfg {
            bytes: 256 * 1024,
            seed: 7,
            reps: 1,
            finder: FinderKind::HashChain,
            bwt: culzss_bzip2::bwt::Backend::SaIs,
        }
    }

    #[test]
    fn table1_row_is_sane() {
        let row = measure_table1_row(Dataset::HighlyCompressible, tiny());
        for v in [row.serial, row.pthread, row.bzip2, row.v1, row.v2] {
            assert!(v.is_finite() && v > 0.0, "{row:?}");
        }
        // Pthread beats serial on a multicore host.
        assert!(row.pthread < row.serial, "{row:?}");
    }

    #[test]
    fn table2_row_matches_direct_ratios() {
        let row = measure_table2_row(Dataset::HighlyCompressible, tiny());
        assert!(row.serial < 0.2);
        assert!(row.v2 < row.v1, "{row:?}");
        assert!(row.bzip2 < row.serial, "{row:?}");
    }

    #[test]
    fn table3_gpu_beats_serial_decompression() {
        let row = measure_table3_row(Dataset::CFiles, tiny());
        assert!(row.culzss > 0.0 && row.serial > 0.0);
        // Paper: 2.5–3.5× — accept any real speedup here; the repro
        // binary reports the exact factor.
        assert!(row.culzss < row.serial, "{row:?}");
    }

    #[test]
    fn figure4_derivation() {
        let row = Table1Measured {
            dataset: Dataset::CFiles,
            serial: 50.0,
            pthread: 10.0,
            bzip2: 20.0,
            v1: 7.0,
            v2: 4.0,
        };
        let fig = Figure4Row::from_table1(&row);
        assert_eq!(fig.pthread, 5.0);
        assert_eq!(fig.bzip2, 2.5);
        assert!((fig.v2 - 12.5).abs() < 1e-12);
    }

    #[test]
    fn default_cfg_reads_env() {
        let cfg = MeasureCfg::default();
        assert!(cfg.bytes >= 1 << 20);
        assert!(cfg.reps >= 1);
        assert!(cfg.scale() > 0.9);
    }
}
