//! Machine-readable benchmark reports and the regression comparator.
//!
//! The `bench` binary emits one [`Report`] per run as JSON
//! (`BENCH_<timestamp>.json`): a versioned header describing how the run
//! was produced, plus one [`Cell`] per engine × corpus with wall time,
//! throughput, compression ratio, allocation counters, and — for the GPU
//! engines — the cost-model counters exported by
//! `culzss_gpusim::exec::LaunchStats::counters`.
//!
//! The workspace builds offline with no serde, so both the writer and
//! the parser are hand-rolled here. The parser accepts any
//! JSON produced by the writer (and ordinary pretty-printed JSON in
//! general); it is not a general-purpose validator.
//!
//! [`compare`] implements the CI gate. Throughput is compared *per
//! corpus relative to the serial brute-force cell* of the same report:
//! that cell acts as a machine-speed calibration, so a uniformly slower
//! CI host does not trip the gate, while a change that slows one engine
//! relative to the others does. The calibration cell itself is gated on
//! ratio and presence only. Decompression cells (`dec-*` engines) form
//! their own family, normalized against the serial CPU decoder
//! ([`DECODE_REFERENCE_ENGINE`]) — decode and encode throughputs scale
//! differently with host speed, so each family calibrates against its
//! own serial cell. The deterministic `cycles` gate applies to any cell
//! that exports the counter, decode kernels included.
//!
//! One cross-engine check rides along: whenever a run measures both
//! `culzss-v2` and `culzss-v3` with `pipeline_cycles` counters on at
//! least [`V3_PIPELINE_WIN_MIN`] common corpora, V3 must cost fewer
//! total modelled pipeline cycles (kernel + host pass) than V2 on at
//! least that many of them — the V3 engine's paper-style acceptance
//! criterion, gated on every CI run rather than pinned once.
//!
//! The [`SLO_ENGINE`] cell is gated separately: its `p99_seconds`
//! counter (client-observed tail latency of a skewed closed-loop load
//! run) may not rise more than [`Tolerances::slo_p99_rise_frac`] over
//! the baseline after machine-speed normalization, while its
//! ratio/throughput columns — artifacts of the mixed job mix — are
//! exempt from the standard per-corpus gates.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Current schema version; bump when a field is renamed or removed
/// (adding fields is backwards-compatible and does not bump it).
pub const SCHEMA_VERSION: u64 = 1;

/// The engine whose throughput calibrates all others in the same corpus.
pub const REFERENCE_ENGINE: &str = "serial";

/// The calibration cell of the decompression family: every `dec-*`
/// cell's throughput is normalized against the serial CPU decoder of
/// the same corpus before gating.
pub const DECODE_REFERENCE_ENGINE: &str = "dec-serial";

/// Which calibration cell gates this engine's throughput.
fn reference_engine(engine: &str) -> &'static str {
    if engine.starts_with("dec-") {
        DECODE_REFERENCE_ENGINE
    } else {
        REFERENCE_ENGINE
    }
}

/// The service-level-objective cell's engine id: a closed-loop skewed
/// multi-tenant load run whose client-observed latency quantiles ride
/// as counters (`p50_seconds`, `p99_seconds`). The cell is exempt from
/// the per-corpus ratio/throughput gates (its job mix makes both
/// columns informational) and is gated on tail latency instead — see
/// [`Tolerances::slo_p99_rise_frac`].
pub const SLO_ENGINE: &str = "server-slo";

/// The synthetic corpus label of the SLO cell (the load generator mixes
/// every real corpus, so the cell does not belong to any one of them).
pub const SLO_CORPUS: &str = "skewed-load";

/// One engine × corpus measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Engine id (`serial`, `serial-hash`, `pthread`, `culzss-v1`,
    /// `culzss-v2`, `bzip2`, `server`).
    pub engine: String,
    /// Corpus slug (`culzss_datasets::Dataset::slug`).
    pub corpus: String,
    /// Input bytes fed to the engine.
    pub input_bytes: u64,
    /// Compressed output bytes.
    pub output_bytes: u64,
    /// Best-of-reps wall-clock seconds for one compression pass.
    pub wall_seconds: f64,
    /// `input_bytes / wall_seconds`, in MB/s (10^6 bytes).
    pub throughput_mbps: f64,
    /// `output_bytes / input_bytes` (smaller is better).
    pub ratio: f64,
    /// Heap bytes allocated during the measured pass (0 when the run
    /// had no allocation probe installed).
    pub alloc_bytes: u64,
    /// Heap allocations during the measured pass.
    pub alloc_count: u64,
    /// Cost-model counters (GPU engines only; empty otherwise). Sorted
    /// by name so reports diff cleanly.
    pub counters: BTreeMap<String, f64>,
}

impl Cell {
    /// Stable lookup key.
    pub fn key(&self) -> (String, String) {
        (self.engine.clone(), self.corpus.clone())
    }
}

/// A full benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// [`SCHEMA_VERSION`] at write time.
    pub schema_version: u64,
    /// Producing tool id (`culzss-bench/bench`).
    pub tool: String,
    /// Bytes per generated corpus.
    pub bytes: u64,
    /// Corpus generator seed.
    pub seed: u64,
    /// Repetitions (minimum kept).
    pub reps: u64,
    /// Whether this was a smoke-sized run.
    pub smoke: bool,
    /// Command lines that produced this report (and any companion
    /// artifacts regenerated in the same run).
    pub commands: Vec<String>,
    /// Engine ids this run was restricted to; empty means the full
    /// grid. [`compare`] treats baseline cells outside the restriction
    /// as skipped, not missing.
    pub engines_filter: Vec<String>,
    /// Corpus slugs this run was restricted to; empty means all.
    pub corpora_filter: Vec<String>,
    /// Measurements, in suite order.
    pub cells: Vec<Cell>,
}

impl Report {
    /// Looks a cell up by engine and corpus.
    pub fn cell(&self, engine: &str, corpus: &str) -> Option<&Cell> {
        self.cells.iter().find(|c| c.engine == engine && c.corpus == corpus)
    }

    /// Serializes the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.cells.len() * 512);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"tool\": {},", json_str(&self.tool));
        let _ = writeln!(out, "  \"bytes\": {},", self.bytes);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"reps\": {},", self.reps);
        let _ = writeln!(out, "  \"smoke\": {},", self.smoke);
        write_str_arr(&mut out, "commands", &self.commands);
        write_str_arr(&mut out, "engines_filter", &self.engines_filter);
        write_str_arr(&mut out, "corpora_filter", &self.corpora_filter);
        out.push_str("  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"engine\": {},", json_str(&cell.engine));
            let _ = writeln!(out, "      \"corpus\": {},", json_str(&cell.corpus));
            let _ = writeln!(out, "      \"input_bytes\": {},", cell.input_bytes);
            let _ = writeln!(out, "      \"output_bytes\": {},", cell.output_bytes);
            let _ = writeln!(out, "      \"wall_seconds\": {},", json_num(cell.wall_seconds));
            let _ = writeln!(out, "      \"throughput_mbps\": {},", json_num(cell.throughput_mbps));
            let _ = writeln!(out, "      \"ratio\": {},", json_num(cell.ratio));
            let _ = writeln!(out, "      \"alloc_bytes\": {},", cell.alloc_bytes);
            let _ = writeln!(out, "      \"alloc_count\": {},", cell.alloc_count);
            out.push_str("      \"counters\": {");
            for (j, (name, value)) in cell.counters.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\n        {}: {}", json_str(name), json_num(*value));
            }
            out.push_str(if cell.counters.is_empty() { "}\n" } else { "\n      }\n" });
            out.push_str("    }");
        }
        out.push_str(if self.cells.is_empty() { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }

    /// Parses a report previously written by [`Report::to_json`].
    pub fn from_json(text: &str) -> Result<Report, String> {
        let value = Json::parse(text)?;
        let obj = value.as_obj("report")?;
        let schema_version = obj.get_num("schema_version")? as u64;
        if schema_version > SCHEMA_VERSION {
            return Err(format!(
                "report schema v{schema_version} is newer than this binary (v{SCHEMA_VERSION})"
            ));
        }
        let mut cells = Vec::new();
        for (i, cell) in obj.get("cells")?.as_arr("cells")?.iter().enumerate() {
            let c = cell.as_obj(&format!("cells[{i}]"))?;
            let mut counters = BTreeMap::new();
            for (name, v) in &c.get("counters")?.as_obj("counters")?.fields {
                counters.insert(name.clone(), v.as_num(name)?);
            }
            cells.push(Cell {
                engine: c.get_str("engine")?,
                corpus: c.get_str("corpus")?,
                input_bytes: c.get_num("input_bytes")? as u64,
                output_bytes: c.get_num("output_bytes")? as u64,
                wall_seconds: c.get_num("wall_seconds")?,
                throughput_mbps: c.get_num("throughput_mbps")?,
                ratio: c.get_num("ratio")?,
                alloc_bytes: c.get_num("alloc_bytes")? as u64,
                alloc_count: c.get_num("alloc_count")? as u64,
                counters,
            });
        }
        let mut commands = Vec::new();
        for (i, cmd) in obj.get("commands")?.as_arr("commands")?.iter().enumerate() {
            commands.push(cmd.as_str(&format!("commands[{i}]"))?.to_string());
        }
        Ok(Report {
            schema_version,
            tool: obj.get_str("tool")?,
            bytes: obj.get_num("bytes")? as u64,
            seed: obj.get_num("seed")? as u64,
            reps: obj.get_num("reps")? as u64,
            smoke: obj.get("smoke")?.as_bool("smoke")?,
            commands,
            // Filters were added after v1 baselines were first written;
            // absence means "full grid" so old reports keep parsing.
            engines_filter: opt_str_arr(obj, "engines_filter")?,
            corpora_filter: opt_str_arr(obj, "corpora_filter")?,
            cells,
        })
    }

    /// Whether this run's subset filters admit the given engine × corpus
    /// cell. An empty filter admits everything on that axis.
    pub fn covers(&self, engine: &str, corpus: &str) -> bool {
        (self.engines_filter.is_empty() || self.engines_filter.iter().any(|e| e == engine))
            && (self.corpora_filter.is_empty() || self.corpora_filter.iter().any(|c| c == corpus))
    }
}

fn write_str_arr(out: &mut String, key: &str, items: &[String]) {
    let _ = write!(out, "  {}: [", json_str(key));
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {}", json_str(item));
    }
    out.push_str(if items.is_empty() { "],\n" } else { "\n  ],\n" });
}

/// Parses an optional array-of-strings field; a missing key is an empty
/// list (fields added after v1 must not break older reports).
fn opt_str_arr(obj: &JsonObj, key: &str) -> Result<Vec<String>, String> {
    let Some((_, value)) = obj.fields.iter().find(|(k, _)| k == key) else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for (i, item) in value.as_arr(key)?.iter().enumerate() {
        out.push(item.as_str(&format!("{key}[{i}]"))?.to_string());
    }
    Ok(out)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite number so it round-trips through the parser; JSON has
/// no NaN/Inf, so non-finite values degrade to 0.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "0.0".to_string()
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (objects, arrays, strings, numbers, bools, null).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(JsonObj),
}

#[derive(Debug, Clone, PartialEq, Default)]
struct JsonObj {
    fields: Vec<(String, Json)>,
}

impl JsonObj {
    fn get(&self, key: &str) -> Result<&Json, String> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    fn get_str(&self, key: &str) -> Result<String, String> {
        Ok(self.get(key)?.as_str(key)?.to_string())
    }

    fn get_num(&self, key: &str) -> Result<f64, String> {
        self.get(key)?.as_num(key)
    }
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    fn as_obj(&self, what: &str) -> Result<&JsonObj, String> {
        match self {
            Json::Obj(o) => Ok(o),
            other => Err(format!("{what}: expected object, got {}", other.kind())),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            other => Err(format!("{what}: expected array, got {}", other.kind())),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {}", other.kind())),
        }
    }

    fn as_num(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!("{what}: expected number, got {}", other.kind())),
        }
    }

    fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected bool, got {}", other.kind())),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        // Surrogates are never emitted by our writer;
                        // map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // bytes are valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut obj = JsonObj::default();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(obj));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        obj.fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(obj));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Comparator (the CI gate).
// ---------------------------------------------------------------------------

/// Per-metric tolerances of the regression gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Maximum allowed drop of a cell's *normalized* throughput
    /// (relative to the same report's serial calibration cell) versus
    /// the baseline, as a fraction. 0.10 ⇒ fail below 90 % of baseline.
    pub throughput_drop_frac: f64,
    /// Maximum allowed absolute drift of the compression ratio in
    /// either direction. Ratios are deterministic, so this catches any
    /// change to the compressed byte stream.
    pub ratio_abs: f64,
    /// Maximum allowed relative *increase* of the `cycles` cost-model
    /// counter on cells that export it (the GPU engines). The counter
    /// is deterministic — same input, same cycles — so this tolerance
    /// only absorbs intentional small cost-model recalibrations, not
    /// host noise. Getting cheaper never fails.
    pub cycles_rise_frac: f64,
    /// Maximum allowed relative rise of the [`SLO_ENGINE`] cell's
    /// `p99_seconds` counter versus the baseline, after machine-speed
    /// normalization against the serial calibration cells. Tail latency
    /// under a contended closed-loop run is far noisier than a
    /// best-of-reps wall time, so the default is generous — the gate
    /// exists to catch scheduling regressions that multiply the tail,
    /// not single-digit-percent drift. Getting faster never fails.
    pub slo_p99_rise_frac: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Self {
            throughput_drop_frac: 0.10,
            ratio_abs: 0.005,
            cycles_rise_frac: 0.02,
            slo_p99_rise_frac: 0.50,
        }
    }
}

/// One gate failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Offending engine.
    pub engine: String,
    /// Offending corpus.
    pub corpus: String,
    /// Metric that breached (`missing-cell`, `throughput`, `ratio`,
    /// `cycles`, `pipeline-cycles`, `slo-p99`).
    pub metric: String,
    /// Human-readable explanation with the numbers.
    pub detail: String,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} / {}: {}", self.metric, self.engine, self.corpus, self.detail)
    }
}

/// Cell-wise merge of two runs of the same suite: for each cell the
/// faster measurement (higher throughput, i.e. lower minimum wall) wins
/// whole — allocation counts and counters travel with the winning
/// measurement. Used by the gate's retry pass to absorb transient host
/// load spikes that span one run's cells.
pub fn merge_best(mut a: Report, b: Report) -> Report {
    for cell_b in b.cells {
        match a.cells.iter_mut().find(|c| c.engine == cell_b.engine && c.corpus == cell_b.corpus) {
            Some(cell_a) => {
                if cell_b.throughput_mbps > cell_a.throughput_mbps {
                    *cell_a = cell_b;
                }
            }
            None => a.cells.push(cell_b),
        }
    }
    a
}

/// Gates `current` against `baseline`. Every baseline cell that the
/// current run's `--engines`/`--corpora` filters admit must exist in the
/// current report; baseline cells outside the filters are skipped, not
/// failed. Throughput is compared per corpus normalized to
/// [`REFERENCE_ENGINE`] ([`DECODE_REFERENCE_ENGINE`] for `dec-*` cells);
/// ratios are compared absolutely. Extra cells in `current` (new
/// engines/corpora) never fail the gate.
pub fn compare(current: &Report, baseline: &Report, tol: &Tolerances) -> Vec<Regression> {
    let mut failures = Vec::new();
    for base in &baseline.cells {
        if !current.covers(&base.engine, &base.corpus) {
            continue; // excluded by this run's subset filters: skipped
        }
        let Some(cur) = current.cell(&base.engine, &base.corpus) else {
            failures.push(Regression {
                engine: base.engine.clone(),
                corpus: base.corpus.clone(),
                metric: "missing-cell".into(),
                detail: format!(
                    "cell present in baseline but absent from this run; if that is \
                     intentional, regenerate the baseline, or restrict the run with \
                     `{}` so the comparator skips it",
                    engines_filter_hint(current)
                ),
            });
            continue;
        };

        if base.engine == SLO_ENGINE {
            // The SLO cell's ratio mixes decompression outputs and its
            // throughput covers a whole contended run; both are
            // informational. Presence is checked above, tail latency by
            // the dedicated gate below.
            continue;
        }

        if (cur.ratio - base.ratio).abs() > tol.ratio_abs {
            failures.push(Regression {
                engine: base.engine.clone(),
                corpus: base.corpus.clone(),
                metric: "ratio".into(),
                detail: format!(
                    "ratio {:.4} vs baseline {:.4} (tolerance ±{:.4})",
                    cur.ratio, base.ratio, tol.ratio_abs
                ),
            });
        }

        if let (Some(cur_cycles), Some(base_cycles)) =
            (cur.counters.get("cycles"), base.counters.get("cycles"))
        {
            if *base_cycles > 0.0 && cur_cycles > &(base_cycles * (1.0 + tol.cycles_rise_frac)) {
                failures.push(Regression {
                    engine: base.engine.clone(),
                    corpus: base.corpus.clone(),
                    metric: "cycles".into(),
                    detail: format!(
                        "modeled cycles {cur_cycles:.3e} vs baseline {base_cycles:.3e} \
                         (tolerance +{:.0} %)",
                        tol.cycles_rise_frac * 100.0
                    ),
                });
            }
        }

        let reference = reference_engine(&base.engine);
        if base.engine == reference {
            continue; // the calibration cells are not gated on throughput
        }
        let (Some(cur_ref), Some(base_ref)) =
            (current.cell(reference, &base.corpus), baseline.cell(reference, &base.corpus))
        else {
            continue; // no calibration cell: missing-cell already reported
        };
        if cur_ref.throughput_mbps <= 0.0 || base_ref.throughput_mbps <= 0.0 {
            continue;
        }
        let cur_rel = cur.throughput_mbps / cur_ref.throughput_mbps;
        let base_rel = base.throughput_mbps / base_ref.throughput_mbps;
        if cur_rel < base_rel * (1.0 - tol.throughput_drop_frac) {
            failures.push(Regression {
                engine: base.engine.clone(),
                corpus: base.corpus.clone(),
                metric: "throughput".into(),
                detail: format!(
                    "normalized throughput {:.3}× {reference} vs baseline {:.3}× \
                     (tolerance −{:.0} %; raw {:.2} vs {:.2} MB/s)",
                    cur_rel,
                    base_rel,
                    tol.throughput_drop_frac * 100.0,
                    cur.throughput_mbps,
                    base.throughput_mbps,
                ),
            });
        }
    }
    if let Some(failure) = v3_pipeline_gate(current) {
        failures.push(failure);
    }
    if let Some(failure) = slo_gate(current, baseline, tol) {
        failures.push(failure);
    }
    failures
}

/// The tail-latency gate on the [`SLO_ENGINE`] cell: the current run's
/// `p99_seconds` may not rise more than [`Tolerances::slo_p99_rise_frac`]
/// over the baseline's, after each side is normalized by its own mean
/// serial-calibration throughput (over the corpora both reports
/// measured) — so a uniformly slower CI host does not trip the gate,
/// while a scheduling change that multiplies the tail does. Runs or
/// baselines without the cell (or without any common calibration cell,
/// where the raw values are compared instead) skip gracefully.
fn slo_gate(current: &Report, baseline: &Report, tol: &Tolerances) -> Option<Regression> {
    if !current.covers(SLO_ENGINE, SLO_CORPUS) {
        return None; // filtered out of this run: skipped, not failed
    }
    let base = baseline.cell(SLO_ENGINE, SLO_CORPUS)?;
    let cur = current.cell(SLO_ENGINE, SLO_CORPUS)?; // absence already reported
    let base_p99 = *base.counters.get("p99_seconds")?;
    let cur_p99 = *cur.counters.get("p99_seconds")?;

    // Machine-speed calibration: mean serial throughput over corpora
    // present in both reports. p99 × machine speed is roughly
    // host-invariant (a 2× slower host doubles latency and halves the
    // calibration throughput).
    let mut cur_speed = 0.0;
    let mut base_speed = 0.0;
    let mut common = 0usize;
    for c in &current.cells {
        if c.engine != REFERENCE_ENGINE || c.throughput_mbps <= 0.0 {
            continue;
        }
        let Some(b) = baseline.cell(REFERENCE_ENGINE, &c.corpus) else { continue };
        if b.throughput_mbps <= 0.0 {
            continue;
        }
        cur_speed += c.throughput_mbps;
        base_speed += b.throughput_mbps;
        common += 1;
    }
    let (cur_norm, base_norm) = if common > 0 {
        (cur_p99 * cur_speed / common as f64, base_p99 * base_speed / common as f64)
    } else {
        (cur_p99, base_p99)
    };
    if base_norm <= 0.0 || cur_norm <= base_norm * (1.0 + tol.slo_p99_rise_frac) {
        return None;
    }
    Some(Regression {
        engine: SLO_ENGINE.into(),
        corpus: SLO_CORPUS.into(),
        metric: "slo-p99".into(),
        detail: format!(
            "normalized p99 latency {cur_norm:.4} vs baseline {base_norm:.4} \
             (tolerance +{:.0} %; raw {:.1} vs {:.1} ms)",
            tol.slo_p99_rise_frac * 100.0,
            cur_p99 * 1e3,
            base_p99 * 1e3,
        ),
    })
}

/// Minimum number of corpora on which `culzss-v3` must beat `culzss-v2`
/// on total modelled pipeline cycles — the acceptance criterion the V3
/// engine shipped with (fewer kernel + host-pass cycles on at least 3
/// of the paper's 5 corpora).
pub const V3_PIPELINE_WIN_MIN: usize = 3;

/// The nearest `--engines` filter that matches what this run actually
/// measured; suggested when a baseline cell goes missing from an
/// unfiltered run (the usual cause: the run was narrowed by editing the
/// suite instead of passing a filter, so the comparator cannot tell a
/// skip from a loss).
fn engines_filter_hint(current: &Report) -> String {
    let mut engines: Vec<&str> = current.cells.iter().map(|c| c.engine.as_str()).collect();
    engines.sort_unstable();
    engines.dedup();
    if engines.is_empty() {
        "--engines <engine-list>".into()
    } else {
        format!("--engines {}", engines.join(","))
    }
}

/// The cross-engine V3 acceptance gate (see [`compare`]): on runs that
/// measure both `culzss-v2` and `culzss-v3` with `pipeline_cycles` on at
/// least [`V3_PIPELINE_WIN_MIN`] common corpora, V3 must win that many.
/// Runs with less common coverage (filtered runs, old baselines without
/// the counter) skip the check rather than fail it.
fn v3_pipeline_gate(current: &Report) -> Option<Regression> {
    let pairs: Vec<(&str, f64, f64)> = current
        .cells
        .iter()
        .filter(|c| c.engine == "culzss-v2")
        .filter_map(|v2| {
            let v3 = current.cell("culzss-v3", &v2.corpus)?;
            Some((
                v2.corpus.as_str(),
                *v2.counters.get("pipeline_cycles")?,
                *v3.counters.get("pipeline_cycles")?,
            ))
        })
        .collect();
    if pairs.len() < V3_PIPELINE_WIN_MIN {
        return None;
    }
    let wins = pairs.iter().filter(|(_, v2, v3)| v3 < v2).count();
    if wins >= V3_PIPELINE_WIN_MIN {
        return None;
    }
    let mut detail = format!(
        "culzss-v3 must beat culzss-v2 on total pipeline cycles on ≥{V3_PIPELINE_WIN_MIN} \
         corpora, won {wins}/{}:",
        pairs.len()
    );
    for (corpus, v2, v3) in &pairs {
        let _ = write!(
            detail,
            " {corpus} v3={v3:.3e} vs v2={v2:.3e} ({})",
            if v3 < v2 { "win" } else { "LOSS" }
        );
    }
    Some(Regression {
        engine: "culzss-v3".into(),
        corpus: "*".into(),
        metric: "pipeline-cycles".into(),
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(engine: &str, corpus: &str, mbps: f64, ratio: f64) -> Cell {
        Cell {
            engine: engine.into(),
            corpus: corpus.into(),
            input_bytes: 1 << 20,
            output_bytes: (ratio * (1 << 20) as f64) as u64,
            wall_seconds: (1 << 20) as f64 / 1e6 / mbps,
            throughput_mbps: mbps,
            ratio,
            alloc_bytes: 0,
            alloc_count: 0,
            counters: BTreeMap::new(),
        }
    }

    fn report(cells: Vec<Cell>) -> Report {
        Report {
            schema_version: SCHEMA_VERSION,
            tool: "culzss-bench/bench".into(),
            bytes: 1 << 20,
            seed: 7,
            reps: 1,
            smoke: true,
            commands: vec!["bench --smoke".into()],
            engines_filter: Vec::new(),
            corpora_filter: Vec::new(),
            cells,
        }
    }

    fn two_engine_report(serial_mbps: f64, v1_mbps: f64) -> Report {
        report(vec![
            cell("serial", "c-files", serial_mbps, 0.55),
            cell("culzss-v1", "c-files", v1_mbps, 0.60),
        ])
    }

    #[test]
    fn json_round_trips_exactly() {
        let mut c = cell("culzss-v1", "de-map", 123.456, 0.339);
        c.counters.insert("cycles".into(), 1.25e9);
        c.counters.insert("occupancy".into(), 0.875);
        c.alloc_bytes = 12_345;
        c.alloc_count = 67;
        let mut r = report(vec![c, cell("serial", "de-map", 2.5, 0.339)]);
        r.commands.push("quotes \" and\nnewlines \\ survive".into());
        r.engines_filter = vec!["culzss-v1".into(), "serial".into()];
        r.corpora_filter = vec!["de-map".into()];
        let parsed = Report::from_json(&r.to_json()).expect("parse");
        assert_eq!(parsed, r);
    }

    #[test]
    fn reports_without_filter_fields_still_parse() {
        // Baselines written before the subset filters existed have no
        // filter fields; they must parse as unfiltered full-grid runs.
        let r = two_engine_report(2.0, 40.0);
        let json: String = r
            .to_json()
            .lines()
            .filter(|l| !l.contains("engines_filter") && !l.contains("corpora_filter"))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = Report::from_json(&json).expect("parse");
        assert_eq!(parsed, r);
    }

    #[test]
    fn empty_collections_round_trip() {
        let r = report(Vec::new());
        let parsed = Report::from_json(&r.to_json()).expect("parse");
        assert_eq!(parsed.cells.len(), 0);
        assert_eq!(parsed, r);
    }

    #[test]
    fn parser_rejects_newer_schema_and_garbage() {
        let mut r = report(Vec::new());
        r.schema_version = SCHEMA_VERSION + 1;
        assert!(Report::from_json(&r.to_json()).unwrap_err().contains("newer"));
        assert!(Report::from_json("not json").is_err());
        assert!(Report::from_json("{}").unwrap_err().contains("schema_version"));
        assert!(Report::from_json("{\"schema_version\": 1} trailing").is_err());
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let r = two_engine_report(2.0, 40.0);
        assert!(compare(&r, &r, &Tolerances::default()).is_empty());
    }

    #[test]
    fn uniform_machine_slowdown_passes() {
        // Both engines 3× slower (a slower CI host): normalization keeps
        // the gate green.
        let baseline = two_engine_report(3.0, 60.0);
        let current = two_engine_report(1.0, 20.0);
        assert!(compare(&current, &baseline, &Tolerances::default()).is_empty());
    }

    #[test]
    fn fifteen_percent_engine_regression_fails() {
        let baseline = two_engine_report(2.0, 40.0);
        let current = two_engine_report(2.0, 40.0 * 0.85);
        let failures = compare(&current, &baseline, &Tolerances::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert_eq!(failures[0].metric, "throughput");
        assert_eq!(failures[0].engine, "culzss-v1");
        // Within tolerance: 5 % down passes.
        let ok = two_engine_report(2.0, 40.0 * 0.95);
        assert!(compare(&ok, &baseline, &Tolerances::default()).is_empty());
    }

    #[test]
    fn ratio_drift_fails_in_both_directions() {
        let baseline = two_engine_report(2.0, 40.0);
        for delta in [0.006, -0.006] {
            let mut current = two_engine_report(2.0, 40.0);
            current.cells[1].ratio += delta;
            let failures = compare(&current, &baseline, &Tolerances::default());
            assert_eq!(failures.len(), 1, "{failures:?}");
            assert_eq!(failures[0].metric, "ratio");
        }
    }

    #[test]
    fn cycle_count_increase_fails_deterministically() {
        let mut baseline = two_engine_report(2.0, 40.0);
        baseline.cells[1].counters.insert("cycles".into(), 1.0e9);
        // Same cycles (and same noisy wall): pass.
        let mut current = baseline.clone();
        current.cells[1].throughput_mbps = 39.0;
        assert!(compare(&current, &baseline, &Tolerances::default()).is_empty());
        // 5 % more modeled cycles: fail, regardless of wall time.
        current.cells[1].counters.insert("cycles".into(), 1.05e9);
        let failures = compare(&current, &baseline, &Tolerances::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert_eq!(failures[0].metric, "cycles");
        // Getting cheaper never fails.
        current.cells[1].counters.insert("cycles".into(), 0.5e9);
        assert!(compare(&current, &baseline, &Tolerances::default()).is_empty());
    }

    #[test]
    fn missing_cell_fails_and_extra_cell_passes() {
        let baseline = two_engine_report(2.0, 40.0);
        let mut current = two_engine_report(2.0, 40.0);
        current.cells.retain(|c| c.engine != "culzss-v1");
        let failures = compare(&current, &baseline, &Tolerances::default());
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].metric, "missing-cell");
        assert!(failures[0].to_string().contains("culzss-v1"));
        // The failure names the filter that would make the comparator
        // skip the missing cell instead of failing it.
        assert!(
            failures[0].detail.contains("--engines serial"),
            "no filter hint in {:?}",
            failures[0].detail
        );

        let mut extra = two_engine_report(2.0, 40.0);
        extra.cells.push(cell("new-engine", "c-files", 1.0, 0.9));
        assert!(compare(&extra, &baseline, &Tolerances::default()).is_empty());
    }

    #[test]
    fn v3_pipeline_gate_requires_three_wins() {
        let corpora = ["c-files", "de-map", "dictionary", "kernel-tarball", "highly-compressible"];
        let with_cycles = |engine: &str, corpus: &str, pipeline: f64| {
            let mut c = cell(engine, corpus, 10.0, 0.5);
            c.counters.insert("pipeline_cycles".into(), pipeline);
            c
        };
        let paired = |v3_cycles: [f64; 5]| {
            let mut cells = Vec::new();
            for (i, corpus) in corpora.iter().enumerate() {
                cells.push(with_cycles("culzss-v2", corpus, 1.0e6));
                cells.push(with_cycles("culzss-v3", corpus, v3_cycles[i]));
            }
            report(cells)
        };
        let empty = report(Vec::new());

        // 5/5 and exactly 3/5 wins pass.
        let all_wins = paired([0.5e6; 5]);
        assert!(compare(&all_wins, &empty, &Tolerances::default()).is_empty());
        let three = paired([0.5e6, 0.5e6, 0.5e6, 2.0e6, 2.0e6]);
        assert!(compare(&three, &empty, &Tolerances::default()).is_empty());

        // 2/5 wins fail with the per-corpus breakdown in the detail.
        let two = paired([0.5e6, 0.5e6, 2.0e6, 2.0e6, 2.0e6]);
        let failures = compare(&two, &empty, &Tolerances::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert_eq!(failures[0].metric, "pipeline-cycles");
        assert_eq!(failures[0].engine, "culzss-v3");
        assert!(failures[0].detail.contains("won 2/5"), "{}", failures[0].detail);
        assert!(failures[0].detail.contains("dictionary"), "{}", failures[0].detail);
        assert!(failures[0].detail.contains("LOSS"), "{}", failures[0].detail);

        // Fewer than three common corpora (a filtered run): skipped.
        let mut narrow = paired([2.0e6; 5]);
        narrow.cells.truncate(4); // two v2/v3 pairs
        assert!(compare(&narrow, &empty, &Tolerances::default()).is_empty());

        // Cells without the counter (an old run) are not paired.
        let mut no_counters = paired([2.0e6; 5]);
        for c in &mut no_counters.cells {
            c.counters.clear();
        }
        assert!(compare(&no_counters, &empty, &Tolerances::default()).is_empty());
    }

    #[test]
    fn filtered_runs_skip_excluded_baseline_cells_instead_of_failing() {
        let baseline = two_engine_report(2.0, 40.0);

        // An engine filter: the serial cell is absent but excluded, so
        // skipped; the v1 cell is present and still gated (on ratio —
        // throughput gating needs the filtered-out calibration cell).
        let mut current = two_engine_report(2.0, 40.0);
        current.cells.retain(|c| c.engine == "culzss-v1");
        current.engines_filter = vec!["culzss-v1".into()];
        assert!(compare(&current, &baseline, &Tolerances::default()).is_empty());

        // A cell the filter admits but the run lacks still fails.
        current.cells.clear();
        let failures = compare(&current, &baseline, &Tolerances::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert_eq!(failures[0].metric, "missing-cell");
        assert_eq!(failures[0].engine, "culzss-v1");

        // A corpus filter skips whole corpora the same way.
        let mut by_corpus = two_engine_report(2.0, 40.0);
        by_corpus.cells.clear();
        by_corpus.corpora_filter = vec!["de-map".into()];
        assert!(compare(&by_corpus, &baseline, &Tolerances::default()).is_empty());

        // And ratio regressions inside the filter are still caught.
        let mut bad = two_engine_report(2.0, 40.0);
        bad.cells.retain(|c| c.engine == "culzss-v1");
        bad.engines_filter = vec!["culzss-v1".into()];
        bad.cells[0].ratio += 0.02;
        let failures = compare(&bad, &baseline, &Tolerances::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert_eq!(failures[0].metric, "ratio");
    }

    #[test]
    fn decode_cells_gate_against_their_own_calibration_cell() {
        let decode_report = |ref_mbps: f64, warp_mbps: f64| {
            report(vec![
                cell("serial", "c-files", 2.0, 0.55),
                cell("dec-serial", "c-files", ref_mbps, 0.55),
                cell("dec-culzss-warp", "c-files", warp_mbps, 0.60),
            ])
        };
        let baseline = decode_report(10.0, 80.0);

        // A uniformly slower host slows both decode cells: pass.
        assert!(compare(&decode_report(5.0, 40.0), &baseline, &Tolerances::default()).is_empty());

        // The warp decoder regressing 15 % relative to dec-serial fails,
        // even though the encode-side serial cell is unchanged.
        let failures =
            compare(&decode_report(10.0, 80.0 * 0.85), &baseline, &Tolerances::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert_eq!(failures[0].metric, "throughput");
        assert_eq!(failures[0].engine, "dec-culzss-warp");
        assert!(failures[0].detail.contains("dec-serial"), "{}", failures[0].detail);

        // The decode calibration cell itself is not throughput-gated.
        assert!(compare(&decode_report(100.0, 800.0), &baseline, &Tolerances::default()).is_empty());

        // And a decode kernel's modeled cycles are gated deterministically.
        let mut base_cycles = decode_report(10.0, 80.0);
        base_cycles.cells[2].counters.insert("cycles".into(), 1.0e9);
        let mut cur_cycles = base_cycles.clone();
        cur_cycles.cells[2].counters.insert("cycles".into(), 1.05e9);
        let failures = compare(&cur_cycles, &base_cycles, &Tolerances::default());
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert_eq!(failures[0].metric, "cycles");
        assert_eq!(failures[0].engine, "dec-culzss-warp");
    }

    #[test]
    fn slo_cell_gates_on_normalized_p99_only() {
        let slo = |p99: f64| {
            let mut c = cell(SLO_ENGINE, SLO_CORPUS, 10.0, 1.2);
            c.counters.insert("p50_seconds".into(), p99 / 4.0);
            c.counters.insert("p99_seconds".into(), p99);
            c
        };
        let with_serial = |serial_mbps: f64, p99: f64| {
            report(vec![cell("serial", "c-files", serial_mbps, 0.55), slo(p99)])
        };
        let tol = Tolerances::default();
        let baseline = with_serial(2.0, 0.100);

        // Identical and mildly worse (within the 50 % tolerance) pass.
        assert!(compare(&with_serial(2.0, 0.100), &baseline, &tol).is_empty());
        assert!(compare(&with_serial(2.0, 0.140), &baseline, &tol).is_empty());

        // A uniformly slower host doubles p99 but halves the serial
        // calibration cell too: normalization keeps the gate green.
        assert!(compare(&with_serial(1.0, 0.200), &baseline, &tol).is_empty());

        // A real tail blow-up on the same-speed host fails.
        let failures = compare(&with_serial(2.0, 0.200), &baseline, &tol);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert_eq!(failures[0].metric, "slo-p99");
        assert_eq!(failures[0].engine, SLO_ENGINE);

        // The SLO cell's ratio and throughput columns are exempt from
        // the standard per-corpus gates.
        let mut drift = with_serial(2.0, 0.100);
        drift.cells[1].ratio = 0.3;
        drift.cells[1].throughput_mbps = 0.5;
        assert!(compare(&drift, &baseline, &tol).is_empty());

        // But a missing SLO cell is still a missing cell.
        let mut gone = with_serial(2.0, 0.100);
        gone.cells.truncate(1);
        let failures = compare(&gone, &baseline, &tol);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert_eq!(failures[0].metric, "missing-cell");
        assert_eq!(failures[0].engine, SLO_ENGINE);

        // A baseline without the cell (pre-SLO) skips the gate.
        let old = report(vec![cell("serial", "c-files", 2.0, 0.55)]);
        assert!(compare(&with_serial(2.0, 5.0), &old, &tol).is_empty());

        // A run filtered away from the cell skips it too.
        let mut narrow = with_serial(2.0, 0.100);
        narrow.cells.truncate(1);
        narrow.engines_filter = vec!["serial".into()];
        assert!(compare(&narrow, &baseline, &tol).is_empty());
    }

    #[test]
    fn merge_best_keeps_the_faster_cell_and_unions() {
        let a = two_engine_report(2.0, 40.0);
        let mut b = two_engine_report(2.5, 30.0);
        b.cells.push(cell("bzip2", "c-files", 9.0, 0.3));
        let merged = merge_best(a, b);
        assert_eq!(merged.cell("serial", "c-files").unwrap().throughput_mbps, 2.5);
        assert_eq!(merged.cell("culzss-v1", "c-files").unwrap().throughput_mbps, 40.0);
        assert_eq!(merged.cell("bzip2", "c-files").unwrap().throughput_mbps, 9.0);
        assert_eq!(merged.cells.len(), 3);
    }

    #[test]
    fn non_finite_numbers_degrade_to_zero() {
        let mut r = two_engine_report(2.0, 40.0);
        r.cells[0].throughput_mbps = f64::INFINITY;
        let parsed = Report::from_json(&r.to_json()).expect("parse");
        assert_eq!(parsed.cells[0].throughput_mbps, 0.0);
    }
}
