//! The engine × corpus measurement suite behind the `bench` binary.
//!
//! Eight engines run over the paper's five corpora
//! ([`culzss_datasets::Dataset::ALL`]):
//!
//! | engine        | what it measures                                         |
//! |---------------|----------------------------------------------------------|
//! | `serial`      | serial LZSS, brute-force finder (the calibration cell)   |
//! | `serial-hash` | serial LZSS, hash-chain finder (byte-identical output)   |
//! | `pthread`     | the Pthread baseline, fixed 8-way chunking               |
//! | `culzss-v1`   | CULZSS V1 on the simulated GPU (+ cost-model counters)   |
//! | `culzss-v2`   | CULZSS V2, CPU selection pass (+ cost-model counters)    |
//! | `culzss-v3`   | CULZSS V3, GPU selection + compaction (same counters)    |
//! | `bzip2`       | the bzip2-style baseline (SA-IS block sorter)            |
//! | `server`      | culzss-server end-to-end: submit → compress → verify     |
//!
//! The GPU cells additionally export `host_cycles` (the modelled serial
//! host pass between kernel exit and container assembly — V1's
//! compaction, V2's selection + encoding, zero for V3) and
//! `pipeline_cycles` (= `cycles` + `host_cycles`), the number the V3
//! acceptance gate in [`crate::report::compare`] reads.
//!
//! Decompression is a first-class workload: every compression engine has
//! a `dec-*` twin that decodes a stream pre-built *outside* the timed
//! region ([`DECODE_ENGINES`]), plus `dec-culzss-warp` for the two-pass
//! warp-parallel GPU decoder. Decode cells flip the byte conventions —
//! `input_bytes` is the compressed stream, `output_bytes` the decoded
//! plaintext, `throughput_mbps` is *decoded* (uncompressed) MB/s (the
//! CODAG reporting convention), and `ratio` stays compressed/uncompressed
//! so the column remains comparable with the encode cells. The GPU decode
//! cells export the deterministic cost-model counters, so `cycles` is
//! gated exactly like compression.
//!
//! Two further cells measure the dedup front end on the incremental-edits
//! corpus only: `dedup-cold` (unseen content every rep) and `dedup-warm`
//! (cache primed one edit generation earlier); see [`DEDUP_ENGINES`].
//! One more cell, `server-slo` ([`SLO_ENGINES`]), drives the service
//! with the production-skewed closed-loop load profile and exports
//! client-observed p50/p99 latency counters that the comparator gates
//! against the baseline.
//! [`GridFilter`] restricts a run to an engine/corpus subset — filtered
//! runs record the restriction in the report so the comparator skips,
//! rather than fails, the cells that were not asked for.
//!
//! Wall times are best-of-reps host wall clock — *not* the scaled-to-128 MB
//! paper methodology of the crate root; the JSON report exists to compare a
//! run against a baseline from the same methodology, so no scaling is
//! wanted. The GPU engines additionally export the deterministic
//! cost-model counters, which are immune to host noise.
//!
//! Heap traffic is counted through an [`AllocProbe`] the *binary* installs
//! (this library is `forbid(unsafe_code)`, so the counting `GlobalAlloc`
//! cannot live here); [`NO_PROBE`] keeps every count at zero.

use std::collections::BTreeMap;

use culzss::{Culzss, DecodeEngine, Version};
use culzss_datasets::{edits, Dataset};
use culzss_lzss::matchfind::FinderKind;
use culzss_lzss::LzssConfig;
use culzss_server::{loadgen, JobSpec, LoadGenConfig, LoadProfile, ServerConfig, Service};

use crate::report::{
    compare, merge_best, Cell, Regression, Report, Tolerances, SCHEMA_VERSION, SLO_CORPUS,
    SLO_ENGINE,
};

/// Engine ids in suite order. The first entry is the calibration cell of
/// the regression gate ([`crate::report::REFERENCE_ENGINE`]).
pub const ENGINES: [&str; 8] =
    ["serial", "serial-hash", "pthread", "culzss-v1", "culzss-v2", "culzss-v3", "bzip2", "server"];

/// Decompression engine ids in suite order. Each decodes a stream its
/// compression twin produced before the clock started. `dec-serial` is
/// the calibration cell decode throughputs are normalized against
/// ([`crate::report::DECODE_REFERENCE_ENGINE`]); `dec-serial-hash`
/// decodes the hash-chain finder's stream, pinning that the finder only
/// affects encode; `dec-culzss-v1`/`dec-culzss-v2`/`dec-culzss-v3` run
/// the paper-faithful serial block decoder (the V3 stream is container
/// v2, so it decodes through the same path as V2's) and
/// `dec-culzss-warp` the two-pass warp-parallel decoder on the same V1
/// stream.
pub const DECODE_ENGINES: [&str; 9] = [
    "dec-serial",
    "dec-serial-hash",
    "dec-pthread",
    "dec-culzss-v1",
    "dec-culzss-v2",
    "dec-culzss-v3",
    "dec-culzss-warp",
    "dec-bzip2",
    "dec-server",
];

/// The dedup front-end cells, measured on the incremental-edits corpus
/// only: `dedup-cold` feeds a cache-enabled service content it has never
/// seen; `dedup-warm` re-submits content one edit generation after a
/// priming pass, so most segments are served from the chunk cache.
pub const DEDUP_ENGINES: [&str; 2] = ["dedup-cold", "dedup-warm"];

/// The service-level-objective cell ([`SLO_ENGINE`], on the synthetic
/// [`SLO_CORPUS`] "corpus"): the closed-loop load generator drives the
/// service with the production-skewed profile (Zipf tenant skew,
/// bounded-Pareto payload sizes, burst phases) and the cell exports the
/// client-observed p50/p99 latency as counters, which the comparator
/// gates against the baseline (see `Tolerances::slo_p99_rise_frac`).
pub const SLO_ENGINES: [&str; 1] = [SLO_ENGINE];

/// Subset selection for a suite run (the `--engines` / `--corpora`
/// flags). An empty axis admits everything on that axis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GridFilter {
    /// Engine ids to run; empty = every engine.
    pub engines: Vec<String>,
    /// Corpus slugs to run; empty = every corpus.
    pub corpora: Vec<String>,
}

impl GridFilter {
    /// Parses comma-separated engine and corpus lists, rejecting names
    /// the suite does not know (a typo must not silently skip a cell).
    pub fn parse(engines: Option<&str>, corpora: Option<&str>) -> Result<GridFilter, String> {
        let mut filter = GridFilter::default();
        for name in split_list(engines) {
            if !ENGINES.contains(&name)
                && !DECODE_ENGINES.contains(&name)
                && !DEDUP_ENGINES.contains(&name)
                && !SLO_ENGINES.contains(&name)
            {
                return Err(format!(
                    "unknown engine {name:?} (known: {}, {}, {}, {})",
                    ENGINES.join(", "),
                    DECODE_ENGINES.join(", "),
                    DEDUP_ENGINES.join(", "),
                    SLO_ENGINES.join(", ")
                ));
            }
            filter.engines.push(name.to_string());
        }
        for name in split_list(corpora) {
            if Dataset::from_slug(name).is_none() {
                let known: Vec<&str> = Dataset::EVERY.iter().map(|d| d.slug()).collect();
                return Err(format!("unknown corpus {name:?} (known: {})", known.join(", ")));
            }
            filter.corpora.push(name.to_string());
        }
        Ok(filter)
    }

    /// Whether the filter admits this engine × corpus cell.
    pub fn admits(&self, engine: &str, corpus: &str) -> bool {
        (self.engines.is_empty() || self.engines.iter().any(|e| e == engine))
            && (self.corpora.is_empty() || self.corpora.iter().any(|c| c == corpus))
    }
}

fn split_list(list: Option<&str>) -> impl Iterator<Item = &str> {
    list.unwrap_or("").split(',').map(str::trim).filter(|s| !s.is_empty())
}

/// Chunk count of the measured Pthread baseline (the paper's i7 920
/// exposes 8 hardware threads). The input is always cut into this many
/// chunks — so the compressed container is host-independent — but the
/// *thread* count is capped at the host's parallelism: oversubscribing
/// a 2-core CI runner 4× just adds scheduler noise to the wall time.
pub const PTHREAD_CHUNKS: usize = 8;

fn pthread_workers() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(1).min(PTHREAD_CHUNKS)
}

/// Returns cumulative heap traffic since process start as
/// `(bytes_allocated, allocation_count)`. The `bench` binary wires this
/// to its counting global allocator.
pub type AllocProbe = fn() -> (u64, u64);

/// Probe used when no counting allocator is installed; all allocation
/// columns read zero.
pub const NO_PROBE: AllocProbe = || (0, 0);

/// Suite sizing.
#[derive(Debug, Clone, Copy)]
pub struct SuiteCfg {
    /// Bytes per generated corpus.
    pub bytes: usize,
    /// Corpus generator seed.
    pub seed: u64,
    /// Repetitions per cell; the minimum wall time is kept.
    pub reps: usize,
    /// Marks the report as smoke-sized.
    pub smoke: bool,
}

impl SuiteCfg {
    /// CI-sized run: 256 KiB per corpus, min-of-2 reps (cheap cells are
    /// adaptively extended to [`MIN_MEASURE_SECONDS`]). Small enough for
    /// a gate job, large enough that every engine does real work.
    pub fn smoke() -> Self {
        Self { bytes: 256 * 1024, seed: 0xC0DE_2011, reps: 2, smoke: true }
    }

    /// Full-sized run, honouring the `CULZSS_BENCH_MB` / `CULZSS_BENCH_REPS`
    /// environment knobs shared with the `repro` binary.
    pub fn full() -> Self {
        let m = crate::MeasureCfg::default();
        Self { bytes: m.bytes, seed: m.seed, reps: m.reps, smoke: false }
    }
}

/// Runs the full engine × corpus grid and assembles the report.
/// `commands` is recorded verbatim in the report header (the command
/// lines that produced this run and any companion artifacts).
pub fn run_suite(cfg: &SuiteCfg, probe: AllocProbe, commands: Vec<String>) -> Report {
    run_suite_filtered(cfg, probe, commands, &GridFilter::default())
}

/// [`run_suite`] restricted to the cells `filter` admits. The filter is
/// recorded in the report header so the comparator can tell a cell that
/// was filtered out from one that went missing.
pub fn run_suite_filtered(
    cfg: &SuiteCfg,
    probe: AllocProbe,
    commands: Vec<String>,
    filter: &GridFilter,
) -> Report {
    let mut cells = Vec::with_capacity(
        (ENGINES.len() + DECODE_ENGINES.len()) * Dataset::ALL.len()
            + DEDUP_ENGINES.len()
            + SLO_ENGINES.len(),
    );
    for dataset in Dataset::ALL {
        let engines: Vec<&str> =
            ENGINES.iter().copied().filter(|e| filter.admits(e, dataset.slug())).collect();
        let decoders: Vec<&str> =
            DECODE_ENGINES.iter().copied().filter(|e| filter.admits(e, dataset.slug())).collect();
        if engines.is_empty() && decoders.is_empty() {
            continue; // don't generate a corpus nothing will read
        }
        let data = dataset.generate(cfg.bytes, cfg.seed);
        for engine in engines {
            cells.push(run_cell(engine, dataset, &data, cfg, probe));
        }
        for engine in decoders {
            cells.push(decode_cell(engine, dataset, &data, cfg, probe));
        }
    }
    cells.extend(dedup_cells(cfg, probe, filter));
    cells.extend(slo_cells(cfg, probe, filter));
    Report {
        schema_version: SCHEMA_VERSION,
        tool: "culzss-bench/bench".into(),
        bytes: cfg.bytes as u64,
        seed: cfg.seed,
        reps: cfg.reps as u64,
        smoke: cfg.smoke,
        commands,
        engines_filter: filter.engines.clone(),
        corpora_filter: filter.corpora.clone(),
        cells,
    }
}

/// Runs the suite and gates it against `baseline`. A run that fails the
/// gate is re-measured once and merged cell-wise with the first pass
/// (fastest measurement wins, see [`merge_best`]) before the final
/// verdict: a transient host load spike slows one run's cells, but a
/// real regression is in the binary and fails both passes.
pub fn run_checked(
    cfg: &SuiteCfg,
    probe: AllocProbe,
    commands: Vec<String>,
    baseline: &Report,
    tol: &Tolerances,
) -> (Report, Vec<Regression>) {
    run_checked_filtered(cfg, probe, commands, baseline, tol, &GridFilter::default())
}

/// [`run_checked`] restricted to the cells `filter` admits; baseline
/// cells outside the filter are skipped by the comparator, not failed.
pub fn run_checked_filtered(
    cfg: &SuiteCfg,
    probe: AllocProbe,
    commands: Vec<String>,
    baseline: &Report,
    tol: &Tolerances,
    filter: &GridFilter,
) -> (Report, Vec<Regression>) {
    let report = run_suite_filtered(cfg, probe, commands.clone(), filter);
    let failures = compare(&report, baseline, tol);
    if failures.is_empty() {
        return (report, failures);
    }
    let merged = merge_best(report, run_suite_filtered(cfg, probe, commands, filter));
    let failures = compare(&merged, baseline, tol);
    (merged, failures)
}

/// Measures one engine on one corpus.
pub fn run_cell(
    engine: &str,
    dataset: Dataset,
    data: &[u8],
    cfg: &SuiteCfg,
    probe: AllocProbe,
) -> Cell {
    let serial_cfg = LzssConfig::dipperstein();
    let chunk = data.len().div_ceil(PTHREAD_CHUNKS).max(1);
    match engine {
        "serial" => measure(engine, dataset, data, cfg, probe, || {
            let out = culzss_lzss::serial::compress_with(data, &serial_cfg, FinderKind::BruteForce)
                .expect("serial compress");
            (out.len(), BTreeMap::new())
        }),
        "serial-hash" => measure(engine, dataset, data, cfg, probe, || {
            let out = culzss_lzss::serial::compress_with(data, &serial_cfg, FinderKind::HashChain)
                .expect("serial compress");
            (out.len(), BTreeMap::new())
        }),
        "pthread" => {
            let workers = pthread_workers();
            measure(engine, dataset, data, cfg, probe, move || {
                let out = culzss_pthread::compress_chunked(data, &serial_cfg, chunk, workers)
                    .expect("pthread compress");
                (out.len(), BTreeMap::new())
            })
        }
        "culzss-v1" => gpu_cell(Version::V1, engine, dataset, data, cfg, probe),
        "culzss-v2" => gpu_cell(Version::V2, engine, dataset, data, cfg, probe),
        "culzss-v3" => gpu_cell(Version::V3, engine, dataset, data, cfg, probe),
        "bzip2" => measure(engine, dataset, data, cfg, probe, || {
            // SA-IS keeps the block sort linear-time on the highly
            // compressible corpus (the doubling sorter's 77.8 s pathology
            // is a repro target, not a gate target).
            let out = culzss_bzip2::compress_with(
                data,
                culzss_bzip2::BZ_BLOCK_SIZE,
                culzss_bzip2::bwt::Backend::SaIs,
            )
            .expect("bzip2 compress");
            (out.len(), BTreeMap::new())
        }),
        "server" => {
            // End-to-end path: admission → batch window → simulated GPU →
            // host verification (on by default) → ticket resolution.
            let service = Service::start(ServerConfig::default());
            let mut cell = measure(engine, dataset, data, cfg, probe, || {
                let ticket = service
                    .submit(JobSpec::compress("bench", data.to_vec()))
                    .expect("bench job admitted");
                let outcome = ticket.wait().expect("bench job completes");
                (outcome.output.len(), BTreeMap::new())
            });
            // Per-stage accumulated seconds across all reps, from the
            // tracing subsystem's counters. Extra counters never fail the
            // gate (the comparator only checks ratio/throughput/cycles),
            // so older baselines stay valid.
            let stats = service.shutdown();
            for (name, value) in [
                ("queue_wait_seconds", stats.queue_wait_seconds),
                ("service_seconds", stats.service_seconds),
                ("verify_seconds", stats.verify_seconds),
                ("modeled_h2d_seconds", stats.modeled_h2d_seconds),
                ("modeled_kernel_seconds", stats.modeled_kernel_seconds),
                ("modeled_d2h_seconds", stats.modeled_d2h_seconds),
                ("modeled_cpu_seconds", stats.modeled_cpu_seconds),
            ] {
                cell.counters.insert(name.into(), value);
            }
            cell
        }
        other => panic!("unknown engine {other:?}"),
    }
}

/// One reused-instance GPU cell; the cost-model counters come from the
/// final rep's launch stats. Reusing the `Culzss` object across reps is
/// deliberate: it exercises the buffer-pool steady state the arena
/// optimization targets.
fn gpu_cell(
    version: Version,
    engine: &str,
    dataset: Dataset,
    data: &[u8],
    cfg: &SuiteCfg,
    probe: AllocProbe,
) -> Cell {
    let culzss = Culzss::new(version);
    let mut cell = measure(engine, dataset, data, cfg, probe, || {
        let (out, stats) = culzss.compress(data).expect("gpu compress");
        let mut counters: BTreeMap<String, f64> = stats
            .launch
            .as_ref()
            .map(|launch| launch.counters().into_iter().map(|(k, v)| (k.to_string(), v)).collect())
            .unwrap_or_default();
        counters.insert("cpu_seconds".into(), stats.cpu_seconds);
        counters.insert("h2d_seconds".into(), stats.h2d_seconds);
        counters.insert("d2h_seconds".into(), stats.d2h_seconds);
        // The cross-engine acceptance gate compares kernel + host-pass
        // totals, so the host pass is a first-class counter here.
        counters.insert("host_cycles".into(), stats.host_cycles);
        if let Some(cycles) = counters.get("cycles").copied() {
            counters.insert("pipeline_cycles".into(), cycles + stats.host_cycles);
        }
        (out.len(), counters)
    });
    let pool = culzss.pool_stats();
    cell.counters.insert("pool_acquires".into(), pool.acquires as f64);
    cell.counters.insert("pool_reuses".into(), pool.reuses as f64);
    cell
}

/// Measures one decompression engine on one corpus. The compressed
/// stream is built by the engine's compression twin *before* the clock
/// starts; the timed region is decode only.
pub fn decode_cell(
    engine: &str,
    dataset: Dataset,
    data: &[u8],
    cfg: &SuiteCfg,
    probe: AllocProbe,
) -> Cell {
    let serial_cfg = LzssConfig::dipperstein();
    let chunk = data.len().div_ceil(PTHREAD_CHUNKS).max(1);
    match engine {
        "dec-serial" | "dec-serial-hash" => {
            // The finder only affects encode; both streams are
            // byte-identical and decode through the same path. The twin
            // cells pin exactly that.
            let finder =
                if engine == "dec-serial" { FinderKind::BruteForce } else { FinderKind::HashChain };
            let stream = culzss_lzss::serial::compress_with(data, &serial_cfg, finder)
                .expect("serial compress");
            decode_measure(engine, dataset, stream.len(), cfg, probe, || {
                let out = culzss_lzss::serial::decompress(&stream, &serial_cfg)
                    .expect("serial decompress");
                (out.len(), BTreeMap::new())
            })
        }
        "dec-pthread" => {
            let workers = pthread_workers();
            let stream = culzss_pthread::compress_chunked(data, &serial_cfg, chunk, workers)
                .expect("pthread compress");
            decode_measure(engine, dataset, stream.len(), cfg, probe, move || {
                let out = culzss_pthread::decompress(&stream, &serial_cfg, workers)
                    .expect("pthread decompress");
                (out.len(), BTreeMap::new())
            })
        }
        "dec-culzss-v1" => {
            gpu_decode_cell(Version::V1, DecodeEngine::Serial, engine, dataset, data, cfg, probe)
        }
        "dec-culzss-v2" => {
            gpu_decode_cell(Version::V2, DecodeEngine::Serial, engine, dataset, data, cfg, probe)
        }
        "dec-culzss-v3" => {
            gpu_decode_cell(Version::V3, DecodeEngine::Serial, engine, dataset, data, cfg, probe)
        }
        "dec-culzss-warp" => gpu_decode_cell(
            Version::V1,
            DecodeEngine::WarpParallel,
            engine,
            dataset,
            data,
            cfg,
            probe,
        ),
        "dec-bzip2" => {
            let stream = culzss_bzip2::compress_with(
                data,
                culzss_bzip2::BZ_BLOCK_SIZE,
                culzss_bzip2::bwt::Backend::SaIs,
            )
            .expect("bzip2 compress");
            decode_measure(engine, dataset, stream.len(), cfg, probe, || {
                let out = culzss_bzip2::decompress(&stream).expect("bzip2 decompress");
                (out.len(), BTreeMap::new())
            })
        }
        "dec-server" => {
            // End-to-end decode path: the service compresses the corpus
            // once (untimed), then decompress jobs run through admission →
            // batch window → simulated GPU → ticket resolution.
            let service = Service::start(ServerConfig::default());
            let ticket = service
                .submit(JobSpec::compress("bench", data.to_vec()))
                .expect("bench compress admitted");
            let stream = ticket.wait().expect("bench compress completes").output;
            let mut cell = decode_measure(engine, dataset, stream.len(), cfg, probe, || {
                let ticket = service
                    .submit(JobSpec::decompress("bench", stream.clone()))
                    .expect("bench decompress admitted");
                let outcome = ticket.wait().expect("bench decompress completes");
                (outcome.output.len(), BTreeMap::new())
            });
            let stats = service.shutdown();
            for (name, value) in [
                ("queue_wait_seconds", stats.queue_wait_seconds),
                ("service_seconds", stats.service_seconds),
                ("verify_seconds", stats.verify_seconds),
                ("modeled_h2d_seconds", stats.modeled_h2d_seconds),
                ("modeled_kernel_seconds", stats.modeled_kernel_seconds),
                ("modeled_d2h_seconds", stats.modeled_d2h_seconds),
                ("modeled_cpu_seconds", stats.modeled_cpu_seconds),
            ] {
                cell.counters.insert(name.into(), value);
            }
            cell
        }
        other => panic!("unknown decode engine {other:?}"),
    }
}

/// One reused-instance GPU decode cell: compress once untimed, then time
/// `decompress` with the requested engine. The cost-model counters come
/// from the final rep's decode launch, so `cycles` gates the decode
/// kernel exactly like the compression cells gate theirs.
fn gpu_decode_cell(
    version: Version,
    decode_engine: DecodeEngine,
    engine: &str,
    dataset: Dataset,
    data: &[u8],
    cfg: &SuiteCfg,
    probe: AllocProbe,
) -> Cell {
    let culzss = Culzss::new(version).with_decode_engine(decode_engine);
    let (stream, _) = culzss.compress(data).expect("gpu compress");
    let mut cell = decode_measure(engine, dataset, stream.len(), cfg, probe, || {
        let (out, stats) = culzss.decompress(&stream).expect("gpu decompress");
        let mut counters: BTreeMap<String, f64> = stats
            .launch
            .as_ref()
            .map(|launch| launch.counters().into_iter().map(|(k, v)| (k.to_string(), v)).collect())
            .unwrap_or_default();
        counters.insert("cpu_seconds".into(), stats.cpu_seconds);
        counters.insert("h2d_seconds".into(), stats.h2d_seconds);
        counters.insert("d2h_seconds".into(), stats.d2h_seconds);
        // Decode has no modelled host pass, so this is always zero and
        // pipeline_cycles equals cycles; exported anyway so the decode
        // and encode cells carry the same counter schema.
        counters.insert("host_cycles".into(), stats.host_cycles);
        if let Some(cycles) = counters.get("cycles").copied() {
            counters.insert("pipeline_cycles".into(), cycles + stats.host_cycles);
        }
        (out.len(), counters)
    });
    let pool = culzss.pool_stats();
    cell.counters.insert("pool_acquires".into(), pool.acquires as f64);
    cell.counters.insert("pool_reuses".into(), pool.reuses as f64);
    cell
}

/// [`measure`] twin for decode cells: `input_bytes` is the compressed
/// stream length, `output_bytes` the decoded plaintext, `throughput_mbps`
/// is *decoded* MB/s (output-based — the number CODAG-style decode tables
/// report), and `ratio` stays compressed/uncompressed so the column is
/// directly comparable with the encode cells.
fn decode_measure<F: FnMut() -> (usize, BTreeMap<String, f64>)>(
    engine: &str,
    dataset: Dataset,
    stream_len: usize,
    cfg: &SuiteCfg,
    probe: AllocProbe,
    mut run: F,
) -> Cell {
    let reps = cfg.reps.max(1);
    let mut output_bytes = 0usize;
    let mut counters = BTreeMap::new();
    let mut wall = f64::INFINITY;
    let mut alloc = (0u64, 0u64);
    let mut total = 0.0f64;
    let mut rep = 0usize;
    while rep < reps || (total < MIN_MEASURE_SECONDS && rep < MAX_DECODE_REPS) {
        let before = probe();
        let started = std::time::Instant::now();
        let (len, c) = run();
        let elapsed = started.elapsed().as_secs_f64();
        let after = probe();
        wall = wall.min(elapsed);
        total += elapsed;
        alloc = (after.0.saturating_sub(before.0), after.1.saturating_sub(before.1));
        output_bytes = len;
        counters = c;
        rep += 1;
    }
    Cell {
        engine: engine.into(),
        corpus: dataset.slug().into(),
        input_bytes: stream_len as u64,
        output_bytes: output_bytes as u64,
        wall_seconds: wall,
        throughput_mbps: if wall > 0.0 { output_bytes as f64 / 1e6 / wall } else { 0.0 },
        ratio: if output_bytes > 0 { stream_len as f64 / output_bytes as f64 } else { 0.0 },
        alloc_bytes: alloc.0,
        alloc_count: alloc.1,
        counters,
    }
}

/// Measures the dedup front end through a cache-enabled service on the
/// incremental-edits corpus ([`DEDUP_ENGINES`]):
///
/// * `dedup-cold` — every rep submits a base snapshot from a fresh seed,
///   so no segment is ever in cache: the price of the full compression
///   path plus chunking/hashing overhead.
/// * `dedup-warm` — the service is primed with edit generation 1, then
///   generation 2 is submitted repeatedly: the first rep pays for the
///   edited segments, later reps are served almost entirely from cache.
///   Best-of-reps therefore reports the warmed steady state, and the
///   exported hit/miss counters cover the incremental first rep too.
fn dedup_cells(cfg: &SuiteCfg, probe: AllocProbe, filter: &GridFilter) -> Vec<Cell> {
    let corpus = Dataset::IncrementalEdits.slug();
    let mut cells = Vec::new();
    if filter.admits("dedup-cold", corpus) {
        let service = dedup_service(cfg);
        let cell = measure_dedup("dedup-cold", cfg, probe, &service, |rep| {
            // A fresh base snapshot every rep: nothing is ever cached.
            edits::snapshot(cfg.bytes, cfg.seed ^ ((rep as u64 + 1) << 32), 1)
        });
        cells.push(finish_dedup_cell(cell, service));
    }
    if filter.admits("dedup-warm", corpus) {
        let service = dedup_service(cfg);
        let prime = edits::snapshot(cfg.bytes, cfg.seed, 1);
        let ticket =
            service.submit(JobSpec::compress("bench-dedup", prime)).expect("prime admitted");
        ticket.wait().expect("prime completes");
        let cell = measure_dedup("dedup-warm", cfg, probe, &service, |_rep| {
            edits::snapshot(cfg.bytes, cfg.seed, 2)
        });
        cells.push(finish_dedup_cell(cell, service));
    }
    // The headline number as a first-class counter on the warm cell.
    if let [cold, warm] = &mut cells[..] {
        if cold.throughput_mbps > 0.0 {
            warm.counters
                .insert("warm_over_cold".into(), warm.throughput_mbps / cold.throughput_mbps);
        }
    }
    cells
}

fn dedup_service(cfg: &SuiteCfg) -> Service {
    Service::start(ServerConfig {
        // Generous byte budget: the warm cell must never evict the
        // priming generation's segments mid-measurement.
        cache: Some((4 * cfg.bytes).max(64 << 20)),
        // Byte-identity of the cached path is pinned by the dedup
        // differential tests; verifying here would time decompression,
        // not the cache.
        verify_outputs: false,
        ..ServerConfig::default()
    })
}

/// [`measure`] variant whose payload is rebuilt per rep *outside* the
/// timed region (the cold cell needs unseen content each rep). Input and
/// output sizes are recorded from rep 0, so the reported ratio does not
/// depend on how many adaptive reps the host's speed allowed.
fn measure_dedup<F: FnMut(usize) -> Vec<u8>>(
    engine: &str,
    cfg: &SuiteCfg,
    probe: AllocProbe,
    service: &Service,
    mut payload: F,
) -> Cell {
    // At least two reps: the warm cell's rep 0 still compresses the
    // edited segments, and best-of-reps must see a fully-warm pass.
    let reps = cfg.reps.max(2);
    let mut input_bytes = 0u64;
    let mut output_bytes = 0u64;
    let mut wall = f64::INFINITY;
    let mut alloc = (0u64, 0u64);
    let mut total = 0.0f64;
    let mut rep = 0usize;
    while rep < reps || (total < MIN_MEASURE_SECONDS && rep < MAX_REPS) {
        let data = payload(rep);
        let len = data.len() as u64;
        let before = probe();
        let started = std::time::Instant::now();
        let ticket =
            service.submit(JobSpec::compress("bench-dedup", data)).expect("dedup job admitted");
        let outcome = ticket.wait().expect("dedup job completes");
        let elapsed = started.elapsed().as_secs_f64();
        let after = probe();
        wall = wall.min(elapsed);
        total += elapsed;
        alloc = (after.0.saturating_sub(before.0), after.1.saturating_sub(before.1));
        if rep == 0 {
            input_bytes = len;
            output_bytes = outcome.output.len() as u64;
        }
        rep += 1;
    }
    Cell {
        engine: engine.into(),
        corpus: Dataset::IncrementalEdits.slug().into(),
        input_bytes,
        output_bytes,
        wall_seconds: wall,
        throughput_mbps: if wall > 0.0 { input_bytes as f64 / 1e6 / wall } else { 0.0 },
        ratio: if input_bytes > 0 { output_bytes as f64 / input_bytes as f64 } else { 0.0 },
        alloc_bytes: alloc.0,
        alloc_count: alloc.1,
        counters: BTreeMap::new(),
    }
}

/// Folds the service's cache counters into the finished cell. Extra
/// counters never fail the gate, so baselines without them stay valid.
fn finish_dedup_cell(mut cell: Cell, service: Service) -> Cell {
    let stats = service.shutdown();
    cell.counters.insert("cache_hits".into(), stats.cache_hits as f64);
    cell.counters.insert("cache_misses".into(), stats.cache_misses as f64);
    cell.counters.insert("cache_bytes_saved".into(), stats.cache_bytes_saved as f64);
    cell.counters.insert("cache_evictions".into(), stats.cache_evictions as f64);
    cell.counters.insert("cache_hit_rate".into(), stats.cache_hit_rate());
    cell
}

/// Measures the service-level-objective cell ([`SLO_ENGINES`]): one
/// closed-loop load-generator run against a default multi-device service
/// using the production-skewed profile — Zipf job counts across tenants,
/// bounded-Pareto payload sizes, burst/calm phases. The cell's wall time
/// and throughput cover the whole run (it is a saturation measurement,
/// not a single-pass one), and the latency SLOs ride as counters:
/// `p50_seconds` / `p99_seconds` are exact client-observed quantiles
/// over every completed job. The comparator gates `p99_seconds` against
/// the baseline after machine-speed normalization (see
/// [`crate::report::Tolerances::slo_p99_rise_frac`]); the wall-noisy
/// ratio/throughput columns of this cell are exempt from the standard
/// per-corpus gates.
fn slo_cells(cfg: &SuiteCfg, probe: AllocProbe, filter: &GridFilter) -> Vec<Cell> {
    if !filter.admits(SLO_ENGINE, SLO_CORPUS) {
        return Vec::new();
    }
    let service = Service::start(ServerConfig::default());
    let load_cfg = LoadGenConfig {
        tenants: 6,
        jobs_per_tenant: 24,
        payload_bytes: (cfg.bytes / 16).clamp(4 * 1024, 256 * 1024),
        decompress_every: 3,
        window: 4,
        seed: cfg.seed,
        deadline: None,
        profile: LoadProfile::Skewed,
    };
    let before = probe();
    let load = loadgen::run(&service, &load_cfg);
    let after = probe();
    let stats = service.shutdown();
    let mut counters = BTreeMap::new();
    for (name, value) in [
        ("p50_seconds", load.latency_quantile(0.50)),
        ("p99_seconds", load.latency_quantile(0.99)),
        ("mean_seconds", load.mean_latency_seconds()),
        ("max_seconds", load.latency_max_seconds),
        ("completed", load.completed as f64),
        ("failed", load.failed as f64),
        ("rejected", load.rejected as f64),
        ("abandoned", load.abandoned as f64),
        ("steals", stats.steals as f64),
        ("stolen_jobs", stats.stolen_jobs as f64),
        ("borrows", stats.borrows as f64),
        ("queue_wait_seconds", stats.queue_wait_seconds),
        ("service_seconds", stats.service_seconds),
    ] {
        counters.insert(name.to_string(), value);
    }
    vec![Cell {
        engine: SLO_ENGINE.into(),
        corpus: SLO_CORPUS.into(),
        input_bytes: load.bytes_in,
        output_bytes: load.bytes_out,
        wall_seconds: load.wall_seconds,
        throughput_mbps: if load.wall_seconds > 0.0 {
            load.bytes_in as f64 / 1e6 / load.wall_seconds
        } else {
            0.0
        },
        // The job mix includes decompression, so bytes out can exceed
        // bytes in; the column is informational for this cell (the
        // comparator exempts it).
        ratio: if load.bytes_in > 0 { load.bytes_out as f64 / load.bytes_in as f64 } else { 0.0 },
        alloc_bytes: after.0.saturating_sub(before.0),
        alloc_count: after.1.saturating_sub(before.1),
        counters,
    }]
}

/// Cheap cells keep re-running until this much total time is measured
/// (or [`MAX_REPS`] is hit): the minimum of many short runs is far less
/// noise-prone than the minimum of `cfg.reps` 2 ms runs.
pub const MIN_MEASURE_SECONDS: f64 = 0.5;

/// Upper bound on adaptive repetitions per cell.
pub const MAX_REPS: usize = 25;

/// Upper bound on adaptive repetitions per *decode* cell. Decoding is
/// 1–3 orders of magnitude faster than encoding, so at the encode cap
/// of [`MAX_REPS`] a sub-millisecond decode cell can never reach the
/// [`MIN_MEASURE_SECONDS`] floor and its minimum gates on scheduler
/// jitter — which is fatal for `dec-serial`, the cell every other
/// decode cell's throughput is normalized against. The higher cap
/// still bounds a decode cell at roughly the floor itself.
pub const MAX_DECODE_REPS: usize = 1000;

/// Times `run` (best of `cfg.reps`, adaptively extended for sub-noise
/// cells), counting heap traffic across the *final* rep — for pooled
/// engines that is the steady state, which is the number the arena
/// optimization moves.
fn measure<F: FnMut() -> (usize, BTreeMap<String, f64>)>(
    engine: &str,
    dataset: Dataset,
    data: &[u8],
    cfg: &SuiteCfg,
    probe: AllocProbe,
    mut run: F,
) -> Cell {
    let reps = cfg.reps.max(1);
    let mut output_bytes = 0usize;
    let mut counters = BTreeMap::new();
    let mut wall = f64::INFINITY;
    let mut alloc = (0u64, 0u64);
    let mut total = 0.0f64;
    let mut rep = 0usize;
    while rep < reps || (total < MIN_MEASURE_SECONDS && rep < MAX_REPS) {
        let before = probe();
        let started = std::time::Instant::now();
        let (len, c) = run();
        let elapsed = started.elapsed().as_secs_f64();
        let after = probe();
        wall = wall.min(elapsed);
        total += elapsed;
        alloc = (after.0.saturating_sub(before.0), after.1.saturating_sub(before.1));
        output_bytes = len;
        counters = c;
        rep += 1;
    }

    let input_bytes = data.len() as u64;
    Cell {
        engine: engine.into(),
        corpus: dataset.slug().into(),
        input_bytes,
        output_bytes: output_bytes as u64,
        wall_seconds: wall,
        throughput_mbps: if wall > 0.0 { input_bytes as f64 / 1e6 / wall } else { 0.0 },
        ratio: if input_bytes > 0 { output_bytes as f64 / input_bytes as f64 } else { 0.0 },
        alloc_bytes: alloc.0,
        alloc_count: alloc.1,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SuiteCfg {
        SuiteCfg { bytes: 8 * 1024, seed: 11, reps: 1, smoke: true }
    }

    #[test]
    fn suite_covers_every_engine_and_corpus() {
        let report = run_suite(&tiny(), NO_PROBE, vec!["test".into()]);
        assert_eq!(
            report.cells.len(),
            (ENGINES.len() + DECODE_ENGINES.len()) * Dataset::ALL.len()
                + DEDUP_ENGINES.len()
                + SLO_ENGINES.len()
        );
        for engine in DEDUP_ENGINES {
            assert!(report.cell(engine, "incremental-edits").is_some(), "{engine}");
        }
        assert!(report.cell(SLO_ENGINE, SLO_CORPUS).is_some());
        for dataset in Dataset::ALL {
            for engine in ENGINES {
                let cell = report
                    .cell(engine, dataset.slug())
                    .unwrap_or_else(|| panic!("missing {engine}/{}", dataset.slug()));
                assert!(cell.wall_seconds > 0.0, "{engine}/{}", dataset.slug());
                assert!(cell.throughput_mbps > 0.0, "{engine}/{}", dataset.slug());
                assert!(
                    cell.ratio > 0.0 && cell.ratio < 2.0,
                    "{engine}/{}: ratio {}",
                    dataset.slug(),
                    cell.ratio
                );
                assert_eq!(cell.input_bytes, 8 * 1024);
            }
            for engine in DECODE_ENGINES {
                let cell = report
                    .cell(engine, dataset.slug())
                    .unwrap_or_else(|| panic!("missing {engine}/{}", dataset.slug()));
                assert!(cell.wall_seconds > 0.0, "{engine}/{}", dataset.slug());
                assert!(cell.throughput_mbps > 0.0, "{engine}/{}", dataset.slug());
                // Decode cells decode the whole corpus back and keep the
                // stream's compression ratio in the ratio column.
                assert_eq!(cell.output_bytes, 8 * 1024, "{engine}/{}", dataset.slug());
                assert!(
                    cell.ratio > 0.0 && cell.ratio < 2.0,
                    "{engine}/{}: ratio {}",
                    dataset.slug(),
                    cell.ratio
                );
            }
        }
        // And the whole thing serializes and parses back.
        let parsed = Report::from_json(&report.to_json()).expect("round trip");
        assert_eq!(parsed, report);
    }

    #[test]
    fn gpu_cells_export_cost_model_counters() {
        let cfg = tiny();
        let data = Dataset::CFiles.generate(cfg.bytes, cfg.seed);
        for engine in ["culzss-v1", "culzss-v2", "culzss-v3"] {
            let cell = run_cell(engine, Dataset::CFiles, &data, &cfg, NO_PROBE);
            for name in [
                "cycles",
                "work_cycles",
                "global_transactions",
                "pool_acquires",
                "host_cycles",
                "pipeline_cycles",
            ] {
                let v = cell.counters.get(name).unwrap_or_else(|| panic!("{engine}: {name}"));
                assert!(v.is_finite() && *v >= 0.0, "{engine}: {name} = {v}");
            }
            // pipeline_cycles is exactly kernel + host pass.
            let expect = cell.counters["cycles"] + cell.counters["host_cycles"];
            assert_eq!(cell.counters["pipeline_cycles"], expect, "{engine}");
            // V3 moves the selection pass onto the device; V1/V2 pay a
            // modelled host pass.
            if engine == "culzss-v3" {
                assert_eq!(cell.counters["host_cycles"], 0.0);
            } else {
                assert!(cell.counters["host_cycles"] > 0.0, "{engine}");
            }
        }
        let serial = run_cell("serial", Dataset::CFiles, &data, &cfg, NO_PROBE);
        assert!(serial.counters.is_empty());
    }

    #[test]
    fn v3_byte_identity_and_pipeline_cycle_win() {
        // The V3 acceptance claim at suite level: byte-identical streams
        // to V2 on every corpus, and fewer total modelled pipeline
        // cycles (kernel + host pass) on at least 3 of the 5. The cycle
        // counters are deterministic, so this is noise-free.
        let cfg = tiny();
        let mut wins = Vec::new();
        for dataset in Dataset::ALL {
            let data = dataset.generate(cfg.bytes, cfg.seed);
            let v2 = run_cell("culzss-v2", dataset, &data, &cfg, NO_PROBE);
            let v3 = run_cell("culzss-v3", dataset, &data, &cfg, NO_PROBE);
            assert_eq!(v2.output_bytes, v3.output_bytes, "{}", dataset.slug());
            assert_eq!(v2.ratio, v3.ratio, "{}", dataset.slug());
            if v3.counters["pipeline_cycles"] < v2.counters["pipeline_cycles"] {
                wins.push(dataset.slug());
            }
        }
        assert!(wins.len() >= 3, "v3 won only on {wins:?}");
    }

    #[test]
    fn server_cell_exports_stage_counters() {
        let cfg = tiny();
        let data = Dataset::CFiles.generate(cfg.bytes, cfg.seed);
        let cell = run_cell("server", Dataset::CFiles, &data, &cfg, NO_PROBE);
        for name in [
            "queue_wait_seconds",
            "service_seconds",
            "verify_seconds",
            "modeled_h2d_seconds",
            "modeled_kernel_seconds",
            "modeled_d2h_seconds",
            "modeled_cpu_seconds",
        ] {
            let v = cell.counters.get(name).unwrap_or_else(|| panic!("server: {name}"));
            assert!(v.is_finite() && *v >= 0.0, "server: {name} = {v}");
        }
        assert!(cell.counters["service_seconds"] > 0.0);
        // The stage counters ride along as extras: a baseline without
        // them still compares clean against this cell.
        let mut bare = cell.clone();
        bare.counters.clear();
        let wrap = |cells: Vec<Cell>| Report {
            schema_version: SCHEMA_VERSION,
            tool: "test".into(),
            bytes: cfg.bytes as u64,
            seed: cfg.seed,
            reps: cfg.reps as u64,
            smoke: cfg.smoke,
            commands: Vec::new(),
            engines_filter: Vec::new(),
            corpora_filter: Vec::new(),
            cells,
        };
        let (current, baseline) = (wrap(vec![cell]), wrap(vec![bare]));
        let regressions = compare(&current, &baseline, &Tolerances::default());
        assert!(regressions.is_empty(), "{regressions:?}");
    }

    #[test]
    fn grid_filter_parses_and_rejects() {
        let f = GridFilter::parse(Some("serial, culzss-v1"), Some("c-files")).unwrap();
        assert!(f.admits("serial", "c-files"));
        assert!(!f.admits("serial", "de-map"));
        assert!(!f.admits("bzip2", "c-files"));
        assert!(GridFilter::parse(Some("dedup-warm"), None)
            .unwrap()
            .admits("dedup-warm", "de-map"));
        assert!(GridFilter::parse(Some("dec-culzss-warp,dec-serial"), None)
            .unwrap()
            .admits("dec-culzss-warp", "c-files"));
        assert!(GridFilter::parse(Some("server-slo"), None)
            .unwrap()
            .admits(SLO_ENGINE, SLO_CORPUS));
        assert!(GridFilter::default().admits("anything", "anywhere"));
        assert!(GridFilter::parse(Some("warp-drive"), None)
            .unwrap_err()
            .contains("unknown engine"));
        assert!(GridFilter::parse(None, Some("nope")).unwrap_err().contains("unknown corpus"));
    }

    #[test]
    fn filtered_suite_runs_only_the_requested_cells() {
        let filter = GridFilter::parse(Some("serial,serial-hash"), Some("de-map")).unwrap();
        let report = run_suite_filtered(&tiny(), NO_PROBE, vec!["test".into()], &filter);
        assert_eq!(report.cells.len(), 2);
        assert!(report.cell("serial", "de-map").is_some());
        assert!(report.cell("serial-hash", "de-map").is_some());
        assert_eq!(report.engines_filter, vec!["serial", "serial-hash"]);
        assert_eq!(report.corpora_filter, vec!["de-map"]);
        // A full-grid baseline gates clean against the filtered run: the
        // missing cells are skipped, the present ones still compared.
        let baseline = run_suite(&tiny(), NO_PROBE, vec!["test".into()]);
        let failures = compare(
            &report,
            &baseline,
            &Tolerances { throughput_drop_frac: 1e9, ..Tolerances::default() },
        );
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn dedup_cells_measure_the_cache_path() {
        let cfg = SuiteCfg { bytes: 192 * 1024, seed: 7, reps: 1, smoke: true };
        let filter = GridFilter::parse(Some("dedup-cold,dedup-warm"), None).unwrap();
        let report = run_suite_filtered(&cfg, NO_PROBE, vec!["test".into()], &filter);
        assert_eq!(report.cells.len(), 2);
        let cold = report.cell("dedup-cold", "incremental-edits").expect("cold cell");
        let warm = report.cell("dedup-warm", "incremental-edits").expect("warm cell");
        // Cold never reuses anything across reps; warm is primed, so its
        // steady state is served from cache.
        assert!(cold.counters["cache_misses"] > 0.0);
        assert!(warm.counters["cache_hits"] > 0.0, "{:?}", warm.counters);
        assert!(warm.counters["cache_hit_rate"] > 0.2, "{:?}", warm.counters);
        assert!(warm.counters["cache_bytes_saved"] > 0.0);
        let speedup = warm.counters["warm_over_cold"];
        assert!(speedup.is_finite() && speedup > 0.0, "{speedup}");
        // Both cells compressed the same corpus shape: sane ratios.
        for cell in [cold, warm] {
            assert!(cell.ratio > 0.0 && cell.ratio < 1.5, "{}: {}", cell.engine, cell.ratio);
            assert_eq!(cell.input_bytes, 192 * 1024);
        }
    }

    #[test]
    fn slo_cell_measures_the_skewed_load_run() {
        let filter = GridFilter::parse(Some("server-slo"), None).unwrap();
        let report = run_suite_filtered(&tiny(), NO_PROBE, vec!["test".into()], &filter);
        assert_eq!(report.cells.len(), 1);
        let cell = report.cell(SLO_ENGINE, SLO_CORPUS).expect("slo cell");
        assert!(cell.wall_seconds > 0.0);
        assert!(cell.input_bytes > 0);
        for name in [
            "p50_seconds",
            "p99_seconds",
            "mean_seconds",
            "max_seconds",
            "completed",
            "failed",
            "rejected",
            "abandoned",
            "steals",
            "borrows",
            "queue_wait_seconds",
            "service_seconds",
        ] {
            let v = cell.counters.get(name).unwrap_or_else(|| panic!("slo: {name}"));
            assert!(v.is_finite() && *v >= 0.0, "slo: {name} = {v}");
        }
        // Every job finishes: no deadlines, no faults, unlimited tenant
        // rate by default.
        assert!(cell.counters["completed"] > 0.0);
        assert_eq!(cell.counters["failed"], 0.0);
        assert_eq!(cell.counters["abandoned"], 0.0);
        // Quantiles are ordered and real observations.
        assert!(cell.counters["p50_seconds"] <= cell.counters["p99_seconds"]);
        assert!(cell.counters["p99_seconds"] <= cell.counters["max_seconds"]);
        assert!(cell.counters["p50_seconds"] > 0.0);
    }

    #[test]
    fn gpu_decode_cells_export_cost_model_counters() {
        let cfg = tiny();
        let data = Dataset::CFiles.generate(cfg.bytes, cfg.seed);
        for engine in ["dec-culzss-v1", "dec-culzss-v2", "dec-culzss-v3", "dec-culzss-warp"] {
            let cell = decode_cell(engine, Dataset::CFiles, &data, &cfg, NO_PROBE);
            for name in ["cycles", "work_cycles", "global_transactions", "pool_acquires"] {
                let v = cell.counters.get(name).unwrap_or_else(|| panic!("{engine}: {name}"));
                assert!(v.is_finite() && *v >= 0.0, "{engine}: {name} = {v}");
            }
            assert_eq!(cell.output_bytes, cfg.bytes as u64, "{engine}");
        }
        let serial = decode_cell("dec-serial", Dataset::CFiles, &data, &cfg, NO_PROBE);
        assert!(serial.counters.is_empty());
    }

    #[test]
    fn warp_decode_beats_serial_block_decode_on_cycles() {
        // The tentpole claim, pinned at suite level: on at least 3 of the
        // 5 corpora the warp-parallel decoder costs ≤ half the modelled
        // cycles of the paper-faithful serial block decoder. (Cycle
        // counters are deterministic, so this is noise-free.)
        let cfg = tiny();
        let mut wins = Vec::new();
        for dataset in Dataset::ALL {
            let data = dataset.generate(cfg.bytes, cfg.seed);
            let serial = decode_cell("dec-culzss-v1", dataset, &data, &cfg, NO_PROBE);
            let warp = decode_cell("dec-culzss-warp", dataset, &data, &cfg, NO_PROBE);
            if warp.counters["cycles"] * 2.0 <= serial.counters["cycles"] {
                wins.push(dataset.slug());
            }
        }
        assert!(wins.len() >= 3, "warp decode won only on {wins:?}");
    }

    #[test]
    fn decode_cells_flip_the_byte_conventions() {
        let cfg = tiny();
        let data = Dataset::CFiles.generate(cfg.bytes, cfg.seed);
        let enc = run_cell("serial", Dataset::CFiles, &data, &cfg, NO_PROBE);
        let dec = decode_cell("dec-serial", Dataset::CFiles, &data, &cfg, NO_PROBE);
        // Same stream seen from both sides: the encode cell's output is
        // the decode cell's input, and the ratio column agrees.
        assert_eq!(dec.input_bytes, enc.output_bytes);
        assert_eq!(dec.output_bytes, enc.input_bytes);
        assert!((dec.ratio - enc.ratio).abs() < 1e-12);
    }

    #[test]
    fn hash_chain_cell_is_byte_identical_to_brute() {
        let cfg = tiny();
        for dataset in Dataset::ALL {
            let data = dataset.generate(cfg.bytes, cfg.seed);
            let brute = run_cell("serial", dataset, &data, &cfg, NO_PROBE);
            let hash = run_cell("serial-hash", dataset, &data, &cfg, NO_PROBE);
            assert_eq!(brute.output_bytes, hash.output_bytes, "{}", dataset.slug());
            assert_eq!(brute.ratio, hash.ratio, "{}", dataset.slug());
        }
    }
}
