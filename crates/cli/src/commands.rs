//! Command implementations.

use std::time::Instant;

use culzss::{Culzss, DecodeEngine, Version};
use culzss_gpusim::report::format_launch;
use culzss_lzss::LzssConfig;

use crate::args::{Codec, Command};

/// Executes a parsed command.
pub fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Compress { input, output, codec, report } => {
            compress(&input, &output, codec, report)
        }
        Command::Decompress { input, output, codec, engine, salvage } => {
            decompress(&input, &output, codec, engine, salvage)
        }
        Command::Verify { path } => verify(&path),
        Command::Info { path } => info(&path),
        Command::Gen { dataset, bytes, output, seed } => gen(&dataset, bytes, &output, seed),
        Command::Serve {
            devices,
            cpu_workers,
            tenants,
            jobs,
            payload,
            queue_depth,
            batch_jobs,
            tenant_rate,
            tenant_burst,
            fail_first,
            corrupt_every,
            seed,
            trace_out,
            cache_mb,
            chaos_seed,
            device_fail,
        } => serve(
            devices,
            cpu_workers,
            tenants,
            jobs,
            payload,
            queue_depth,
            batch_jobs,
            tenant_rate,
            tenant_burst,
            fail_first,
            corrupt_every,
            seed,
            trace_out,
            cache_mb,
            chaos_seed,
            device_fail,
        ),
        Command::Profile { input, codec, decompress, engine, out } => {
            profile(&input, codec, decompress, engine, out)
        }
        Command::Dedup { input, cache_mb } => dedup(&input, cache_mb),
        Command::BenchServe { jobs, payload, seed } => bench_serve(jobs, payload, seed),
        Command::Bench { smoke, size_mb, reps, seed, out, baseline, check, engines, corpora } => {
            bench(smoke, size_mb, reps, seed, out, baseline, check, engines, corpora)
        }
        Command::Sancheck { dataset, bytes, seed } => sancheck(&dataset, bytes, seed),
        Command::Selftest => selftest(),
    }
}

fn read(path: &str) -> Result<Vec<u8>, String> {
    std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn write(path: &str, bytes: &[u8]) -> Result<(), String> {
    std::fs::write(path, bytes).map_err(|e| format!("cannot write {path}: {e}"))
}

fn compress(input: &str, output: &str, codec: Codec, report: bool) -> Result<(), String> {
    let data = read(input)?;
    let started = Instant::now();
    let bytes = match codec {
        Codec::V1 | Codec::V2 | Codec::V3 => {
            let version = match codec {
                Codec::V1 => Version::V1,
                Codec::V3 => Version::V3,
                _ => Version::V2,
            };
            let culzss = Culzss::new(version);
            let (bytes, stats) = culzss.compress(&data).map_err(|e| e.to_string())?;
            println!(
                "{}: modelled GPU pipeline {:.3} ms (kernel {:.3} ms)",
                version.name(),
                stats.modeled_total_seconds() * 1e3,
                stats.kernel_seconds * 1e3
            );
            if report {
                if let Some(launch) = &stats.launch {
                    println!("{}", format_launch("culzss", culzss.device(), launch));
                }
            }
            bytes
        }
        Codec::Lzss => culzss_lzss::serial::compress(&data, &LzssConfig::dipperstein())
            .map_err(|e| e.to_string())?,
        Codec::Pthread => culzss_pthread::compress(
            &data,
            &LzssConfig::dipperstein(),
            culzss_pthread::default_threads(),
        )
        .map_err(|e| e.to_string())?,
        Codec::Bzip2 => culzss_bzip2::compress(&data).map_err(|e| e.to_string())?,
        Codec::Auto => unreachable!("rejected at parse time"),
    };
    write(output, &bytes)?;
    println!(
        "{} -> {} bytes ({:.1}%) in {:.1} ms host wall",
        data.len(),
        bytes.len(),
        100.0 * bytes.len() as f64 / data.len().max(1) as f64,
        started.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

fn decompress(
    input: &str,
    output: &str,
    codec: Codec,
    engine: DecodeEngine,
    salvage: bool,
) -> Result<(), String> {
    let data = read(input)?;
    if salvage {
        return salvage_decompress(&data, input, output);
    }
    let codec = if codec == Codec::Auto { detect(&data)? } else { codec };
    let bytes = match codec {
        Codec::V1 | Codec::V2 | Codec::V3 => {
            let culzss = Culzss::new(Version::V1).with_decode_engine(engine);
            culzss.decompress_auto(&data).map_err(|e| e.to_string())?.0
        }
        Codec::Lzss => culzss_lzss::serial::decompress(&data, &LzssConfig::dipperstein())
            .map_err(|e| e.to_string())?,
        Codec::Pthread => culzss_pthread::decompress(
            &data,
            &LzssConfig::dipperstein(),
            culzss_pthread::default_threads(),
        )
        .map_err(|e| e.to_string())?,
        Codec::Bzip2 => culzss_bzip2::decompress(&data).map_err(|e| e.to_string())?,
        Codec::Auto => unreachable!("resolved above"),
    };
    write(output, &bytes)?;
    println!("{} -> {} bytes", data.len(), bytes.len());
    Ok(())
}

/// Best-effort decode of a damaged CULZSS container: intact chunks are
/// recovered, damaged ones become zero-filled holes, and the damage
/// report is printed. Fails only when the container metadata itself is
/// unusable.
fn salvage_decompress(data: &[u8], input: &str, output: &str) -> Result<(), String> {
    let (bytes, report) = culzss::salvage::salvage(data).map_err(|e| format!("{input}: {e}"))?;
    println!(
        "salvage: {}/{} chunk(s) intact — {} B recovered, {} B zero-filled",
        report.total_chunks - report.damaged.len(),
        report.total_chunks,
        report.recovered_bytes,
        report.hole_bytes,
    );
    for d in &report.damaged {
        let why = match &d.kind {
            culzss::DamageKind::Truncated => "body truncated".to_string(),
            culzss::DamageKind::CrcMismatch { expected_crc, got_crc } => {
                format!("crc mismatch (stored {expected_crc:08x}, computed {got_crc:08x})")
            }
            culzss::DamageKind::DecodeFailed { error } => format!("decode failed: {error}"),
        };
        println!(
            "  chunk {:>4}: bytes {}..{} zero-filled — {why}",
            d.index, d.byte_range.start, d.byte_range.end
        );
    }
    match report.stream_crc_ok {
        Some(true) => println!("stream crc: ok"),
        Some(false) => println!("stream crc: MISMATCH (recovered bytes may still be damaged)"),
        None => {}
    }
    write(output, &bytes)?;
    println!("{} -> {} bytes", data.len(), bytes.len());
    Ok(())
}

/// Checks every checksum in a compressed file; per-chunk verdicts for
/// containers. Errors (nonzero exit) on any damage.
fn verify(path: &str) -> Result<(), String> {
    let data = read(path)?;
    if data.len() < 4 {
        return Err("file too short to identify".into());
    }
    match &data[..4] {
        b"CLZC" => {
            let (c, payload_at) = culzss_lzss::container::Container::parse_lenient(&data)
                .map_err(|e| format!("{path}: metadata unusable: {e}"))?;
            println!(
                "container: v{} ({}), {} chunk(s), {} B uncompressed",
                c.version,
                if c.is_checksummed() { "checksummed" } else { "no checksums" },
                c.chunk_comp_sizes.len(),
                c.total_len,
            );
            let payload = &data[payload_at.min(data.len())..];
            let mut bad = 0usize;
            for check in c.check_payload(payload) {
                let verdict = match (check.stored_crc, check.computed_crc) {
                    (_, None) => {
                        bad += 1;
                        "TRUNCATED".to_string()
                    }
                    (Some(want), Some(got)) if want != got => {
                        bad += 1;
                        format!("CRC MISMATCH (stored {want:08x}, computed {got:08x})")
                    }
                    (Some(want), Some(_)) => format!("ok (crc {want:08x})"),
                    (None, Some(_)) => "present (v1: no chunk crc)".to_string(),
                };
                println!(
                    "  chunk {:>4}: {:>8} B compressed -> {:>8} B — {verdict}",
                    check.index,
                    check.comp_range.len(),
                    check.uncompressed_len,
                );
            }
            if bad > 0 {
                return Err(format!("{path}: {bad} damaged chunk(s)"));
            }
            // Chunk bodies check out; prove the whole stream with a
            // strict decode (covers the stream CRC and v1 blind spots).
            let decoded = if c.format_id == culzss_lzss::format::TokenFormat::Fixed16.id() {
                Culzss::new(Version::V1)
                    .decompress_auto(&data)
                    .map(|r| r.0)
                    .map_err(|e| e.to_string())
            } else {
                // Pthread streams from this CLI always carry the
                // Dipperstein configuration; check_config inside the
                // decoder rejects anything else.
                let config = LzssConfig::dipperstein();
                culzss_pthread::decompress(&data, &config, culzss_pthread::default_threads())
                    .map_err(|e| e.to_string())
            };
            match decoded {
                Ok(plain) => println!("stream decode: ok ({} bytes)", plain.len()),
                Err(e) => return Err(format!("{path}: stream decode failed: {e}")),
            }
        }
        b"LZSS" => {
            let plain = culzss_lzss::serial::decompress(&data, &LzssConfig::dipperstein())
                .map_err(|e| format!("{path}: {e}"))?;
            println!("serial LZSS stream: decode ok ({} bytes)", plain.len());
        }
        b"BZR1" => {
            let plain = culzss_bzip2::decompress(&data).map_err(|e| format!("{path}: {e}"))?;
            println!("BZR1 stream: decode ok ({} bytes, all block CRCs verified)", plain.len());
        }
        other => return Err(format!("{path}: unknown magic {other:02x?}")),
    }
    println!("verify passed");
    Ok(())
}

/// Magic-based stream detection.
fn detect(data: &[u8]) -> Result<Codec, String> {
    if data.len() < 4 {
        return Err("file too short to identify".into());
    }
    match &data[..4] {
        b"CLZC" => {
            // Distinguish the CULZSS (Fixed16) container from the Pthread
            // (FlagBit) one via the format id byte.
            let (container, _) =
                culzss_lzss::container::Container::parse(data).map_err(|e| e.to_string())?;
            if container.format_id == culzss_lzss::format::TokenFormat::Fixed16.id() {
                Ok(Codec::V2)
            } else {
                Ok(Codec::Pthread)
            }
        }
        b"LZSS" => Ok(Codec::Lzss),
        b"BZR1" => Ok(Codec::Bzip2),
        other => Err(format!("unknown magic {other:02x?}")),
    }
}

fn info(path: &str) -> Result<(), String> {
    let data = read(path)?;
    if data.len() < 4 {
        return Err("file too short".into());
    }
    match &data[..4] {
        b"CLZC" => {
            let (c, payload) =
                culzss_lzss::container::Container::parse(&data).map_err(|e| e.to_string())?;
            println!("chunked LZSS container (CLZC)");
            println!(
                "  format        : {}",
                if c.format_id == 2 { "Fixed16 (CULZSS)" } else { "FlagBit (CPU)" }
            );
            println!("  window        : {} B", c.window_size);
            println!("  match lengths : {}..={}", c.min_match, c.max_match);
            println!("  chunk size    : {} B", c.chunk_size);
            println!("  chunks        : {}", c.chunk_comp_sizes.len());
            println!("  uncompressed  : {} B", c.total_len);
            println!("  compressed    : {} B ({} payload)", data.len(), data.len() - payload);
            if c.total_len > 0 {
                println!(
                    "  ratio         : {:.1}%",
                    100.0 * data.len() as f64 / c.total_len as f64
                );
            }
        }
        b"LZSS" => {
            let len = u32::from_le_bytes(data[4..8].try_into().map_err(|_| "short header")?);
            println!("standalone serial LZSS stream");
            println!("  uncompressed  : {len} B");
            println!("  compressed    : {} B", data.len());
        }
        b"BZR1" => {
            let len = u64::from_le_bytes(data[4..12].try_into().map_err(|_| "short header")?);
            let block = u32::from_le_bytes(data[12..16].try_into().map_err(|_| "short header")?);
            println!("block-sorting stream (BZR1)");
            println!("  uncompressed  : {len} B");
            println!("  block size    : {block} B");
            println!("  compressed    : {} B", data.len());
        }
        other => {
            println!("unrecognized magic {other:02x?} ({} bytes)", data.len());
        }
    }
    Ok(())
}

fn gen(dataset: &str, bytes: usize, output: &str, seed: u64) -> Result<(), String> {
    let data = if dataset == "mixed" {
        culzss_datasets::mixer::Mixer::datacenter().generate(bytes, seed)
    } else {
        culzss_datasets::Dataset::from_slug(dataset)
            .ok_or(format!("unknown dataset `{dataset}`"))?
            .generate(bytes, seed)
    };
    write(output, &data)?;
    println!(
        "{dataset}: {bytes} bytes (entropy {:.2} bits/byte) -> {output}",
        culzss_datasets::stats::entropy_bits_per_byte(&data)
    );
    Ok(())
}

/// Folds one `--device-fail` spec (`D:dead@N[+M]`, `D:flaky@P`,
/// `D:slow@X`, `D:hang@N`) into the fault plan.
fn apply_device_fail_spec(
    plan: culzss_server::FaultPlan,
    spec: &str,
) -> Result<culzss_server::FaultPlan, String> {
    let bad = |why: &str| format!("bad --device-fail spec `{spec}`: {why}");
    let (device, rest) = spec.split_once(':').ok_or_else(|| bad("expected DEVICE:KIND@ARG"))?;
    let device: usize = device.trim().parse().map_err(|_| bad("device is not a number"))?;
    let (kind, arg) = rest.split_once('@').ok_or_else(|| bad("expected KIND@ARG"))?;
    match kind.trim() {
        "dead" => {
            let (at, heal) = match arg.split_once('+') {
                Some((at, heal)) => {
                    let heal =
                        heal.parse::<u64>().map_err(|_| bad("heal count is not a number"))?;
                    (at, Some(heal))
                }
                None => (arg, None),
            };
            let at = at.parse::<u64>().map_err(|_| bad("launch index is not a number"))?;
            Ok(plan.device_dead(device, at, heal))
        }
        "flaky" => {
            let rate = arg.parse::<f64>().map_err(|_| bad("rate is not a number"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(bad("rate must be in 0..=1"));
            }
            Ok(plan.device_flaky(device, rate))
        }
        "slow" => {
            let mult = arg.parse::<f64>().map_err(|_| bad("multiplier is not a number"))?;
            if !mult.is_finite() || mult < 1.0 {
                return Err(bad("multiplier must be >= 1"));
            }
            Ok(plan.device_slow(device, mult))
        }
        "hang" => {
            let at = arg.parse::<u64>().map_err(|_| bad("launch index is not a number"))?;
            Ok(plan.device_hang(device, at, 0.05))
        }
        other => Err(bad(&format!("unknown kind `{other}` (dead/flaky/slow/hang)"))),
    }
}

#[allow(clippy::too_many_arguments)]
fn serve(
    devices: usize,
    cpu_workers: usize,
    tenants: usize,
    jobs: usize,
    payload: usize,
    queue_depth: usize,
    batch_jobs: usize,
    tenant_rate: u64,
    tenant_burst: usize,
    fail_first: u64,
    corrupt_every: u64,
    seed: u64,
    trace_out: Option<String>,
    cache_mb: usize,
    chaos_seed: u64,
    device_fail: Option<String>,
) -> Result<(), String> {
    use culzss_server::{FaultPlan, LoadGenConfig, ServerConfig, Service};

    let mut fault =
        if fail_first > 0 { FaultPlan::fail_first(fail_first) } else { FaultPlan::none() };
    if corrupt_every > 0 {
        fault = fault.corrupt_bit_flip(corrupt_every, 997);
    }
    if let Some(specs) = &device_fail {
        fault = fault.chaos(chaos_seed);
        for spec in specs.split(',').filter(|s| !s.trim().is_empty()) {
            fault = apply_device_fail_spec(fault, spec.trim())?;
        }
        for (device, _) in fault.device_faults() {
            if *device >= devices {
                return Err(format!(
                    "--device-fail names gpu{device} but only {devices} device(s) are configured"
                ));
            }
        }
    }
    let config = ServerConfig {
        devices: (0..devices).map(|_| culzss_gpusim::DeviceSpec::gtx480()).collect(),
        cpu_workers,
        queue_depth,
        batch_jobs,
        tenant_rate_bytes: (tenant_rate > 0).then_some(tenant_rate),
        tenant_burst_bytes: tenant_burst,
        fault,
        cache: (cache_mb > 0).then_some(cache_mb << 20),
        ..ServerConfig::default()
    };
    println!(
        "service: {devices} simulated GTX 480 device(s) + {cpu_workers} CPU worker(s), \
         queue depth {queue_depth}, batch window {batch_jobs} jobs{}{}",
        if cache_mb > 0 { format!(", {cache_mb} MiB chunk cache") } else { String::new() },
        if tenant_rate > 0 {
            format!(", tenant rate {tenant_rate} B/s (burst {tenant_burst} B)")
        } else {
            String::new()
        }
    );
    if let Some(specs) = &device_fail {
        println!("chaos: seed {chaos_seed}, schedule {specs}");
    }
    let service = Service::start(config);

    let load = LoadGenConfig {
        tenants,
        jobs_per_tenant: jobs,
        payload_bytes: payload,
        seed,
        ..LoadGenConfig::default()
    };
    println!(
        "load: {tenants} tenant(s) x {jobs} jobs x {payload} B (closed loop, window {})",
        load.window
    );
    let report = culzss_server::loadgen::run(&service, &load);
    println!("\nclient view:\n{report}");

    let recent = service.recent_batches();
    println!("\nlast batch windows (of {}):", recent.len());
    for batch in recent.iter().rev().take(8).rev() {
        println!("  {batch}");
    }

    let stats = match trace_out {
        Some(path) => {
            let (stats, json) = service.shutdown_with_trace();
            culzss_server::validate_chrome_trace(&json)?;
            write(&path, json.as_bytes())?;
            println!("\ntrace: wrote {path} (open in Perfetto or chrome://tracing)");
            stats
        }
        None => service.shutdown(),
    };
    println!("\nservice stats:\n{stats}");
    if !stats.breaker_transitions.is_empty() {
        println!("\nbreaker transitions:");
        for t in &stats.breaker_transitions {
            println!("  {t}");
        }
    }
    println!("counters reconcile: {}", stats.reconciles());
    Ok(())
}

/// Profiles one compression — or, with `decompress`, one decompression —
/// job through the service: runs it on a single simulated GTX 480,
/// exports the combined host + modelled GPU Chrome trace, and prints the
/// per-stage latency breakdown. In decompress mode the input is
/// compressed *before* the service starts, so the trace and stages cover
/// the decode path only.
fn profile(
    input: &str,
    codec: Codec,
    decompress: bool,
    engine: DecodeEngine,
    out: Option<String>,
) -> Result<(), String> {
    use culzss::CulzssParams;
    use culzss_server::{JobSpec, ServerConfig, Service};

    let data = read(input)?;
    let mut params = match codec {
        Codec::V1 => CulzssParams::v1(),
        Codec::V3 => CulzssParams::v3(),
        _ => CulzssParams::v2(),
    };
    params.decode_engine = engine;
    // No CPU workers: the job must take the device path, so the trace
    // always carries modelled kernel stages and GPU block spans.
    let config = ServerConfig {
        devices: vec![culzss_gpusim::DeviceSpec::gtx480()],
        cpu_workers: 0,
        params: params.clone(),
        ..ServerConfig::default()
    };
    println!(
        "profile: {} ({} B, codec {}{}) on 1 simulated GTX 480",
        input,
        data.len(),
        match codec {
            Codec::V1 => "v1",
            Codec::V3 => "v3",
            _ => "v2",
        },
        if decompress { format!(", decompress, engine {}", engine.name()) } else { String::new() }
    );
    let payload = if decompress {
        // Compress outside the service so only the decode job is traced.
        let culzss = Culzss::with_device(culzss_gpusim::DeviceSpec::gtx480(), params);
        culzss.compress(&data).map_err(|e| e.to_string())?.0
    } else {
        data
    };
    let bytes_in = payload.len();
    let service = Service::start(config);
    let spec = if decompress {
        JobSpec::decompress("profile", payload)
    } else {
        JobSpec::compress("profile", payload)
    };
    let ticket = service.submit(spec).map_err(|e| e.to_string())?;
    let outcome = ticket.wait().map_err(|e| format!("profile job failed: {e}"))?;
    let bytes_out = outcome.output.len();

    let (stats, json) = service.shutdown_with_trace();
    // The export self-validates before it is written: balanced B/E pairs
    // per lane, monotonic timestamps, non-negative X durations.
    culzss_server::validate_chrome_trace(&json)?;
    let out_path = out.unwrap_or_else(|| format!("{input}.trace.json"));
    write(&out_path, json.as_bytes())?;

    println!("{bytes_in} -> {bytes_out} bytes ({:.1}%)", {
        100.0 * bytes_out as f64 / bytes_in.max(1) as f64
    });
    println!("\nstage breakdown (host wall unless noted):");
    let stages = [
        ("queue wait", stats.queue_wait_seconds),
        ("service (device path)", stats.service_seconds),
        ("verify (host decode)", stats.verify_seconds),
        ("h2d (modelled)", stats.modeled_h2d_seconds),
        ("kernel (modelled)", stats.modeled_kernel_seconds),
        ("d2h (modelled)", stats.modeled_d2h_seconds),
        ("cpu pack (modelled)", stats.modeled_cpu_seconds),
    ];
    for (label, seconds) in stages {
        println!("  {label:<22} {:>10.3} ms", seconds * 1e3);
    }
    println!("\ntrace: wrote {out_path} (open in Perfetto or chrome://tracing)");
    Ok(())
}

/// Compresses `input` twice through a chunk-cache-backed compressor and
/// prints the chunking layout plus cold/warm cache behaviour. The second
/// pass must be served entirely from cache and produce the identical
/// container.
fn dedup(input: &str, cache_mb: usize) -> Result<(), String> {
    use std::sync::Arc;

    use culzss::CulzssParams;
    use culzss_dedup::{ChunkCache, Chunker, DedupCompressor};

    let data = read(input)?;
    let params = CulzssParams::v1();
    let chunker = Chunker::for_align(params.chunk_size);
    let segments = chunker.segments(&data);
    println!("dedup: {} ({} B), {} MiB cache", input, data.len(), cache_mb.max(1));
    if !segments.is_empty() {
        let avg = data.len() / segments.len();
        let min = segments.iter().map(|s| s.len()).min().unwrap_or(0);
        let max = segments.iter().map(|s| s.len()).max().unwrap_or(0);
        println!(
            "chunking: {} segment(s) on the {} B grid — {} B min / {} B avg / {} B max",
            segments.len(),
            params.chunk_size,
            min,
            avg,
            max
        );
    }

    let threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let cache = Arc::new(ChunkCache::new(cache_mb.max(1) << 20));
    let compressor = DedupCompressor::new(Arc::clone(&cache), params);

    let started = Instant::now();
    let (cold_out, cold) = compressor.compress_cpu(&data, threads).map_err(|e| e.to_string())?;
    let cold_ms = started.elapsed().as_secs_f64() * 1e3;
    let started = Instant::now();
    let (warm_out, warm) = compressor.compress_cpu(&data, threads).map_err(|e| e.to_string())?;
    let warm_ms = started.elapsed().as_secs_f64() * 1e3;

    if cold_out != warm_out {
        return Err("cached pass produced a different container".into());
    }
    println!(
        "cold pass: {:>8.1} ms — {}/{} segment(s) from cache (hit rate {:.0}%)",
        cold_ms,
        cold.hit_segments,
        cold.segments,
        cold.hit_rate() * 100.0
    );
    println!(
        "warm pass: {:>8.1} ms — {}/{} segment(s) from cache (hit rate {:.0}%), \
         {} B served from cache",
        warm_ms,
        warm.hit_segments,
        warm.segments,
        warm.hit_rate() * 100.0,
        warm.bytes_from_cache
    );
    let stats = cache.stats();
    println!(
        "cache: {} hit(s) / {} miss(es), {} entr(ies) holding {} B, {} eviction(s)",
        stats.hits, stats.misses, stats.entries, stats.stored_bytes, stats.evictions
    );
    println!(
        "container: {} -> {} bytes ({:.1}%), byte-identical across passes",
        data.len(),
        cold_out.len(),
        100.0 * cold_out.len() as f64 / data.len().max(1) as f64
    );
    Ok(())
}

fn bench_serve(jobs: usize, payload: usize, seed: u64) -> Result<(), String> {
    use culzss_server::{FaultPlan, LoadGenConfig, ServerConfig, Service};

    let shapes: [(&str, usize, usize, FaultPlan); 4] = [
        ("1 gpu + 0 cpu", 1, 0, FaultPlan::none()),
        ("1 gpu + 1 cpu", 1, 1, FaultPlan::none()),
        ("2 gpu + 1 cpu", 2, 1, FaultPlan::none()),
        ("2 gpu + 1 cpu, flaky", 2, 1, FaultPlan::every_nth(4)),
    ];
    println!("bench-serve: 4 tenants x {jobs} jobs x {payload} B per pool shape (seed {seed})\n");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>12} {:>10} {:>10}",
        "pool", "completed", "rejected", "fallback", "mean lat ms", "wall s", "coalesce"
    );
    for (label, devices, cpu_workers, fault) in shapes {
        let config = ServerConfig {
            devices: (0..devices).map(|_| culzss_gpusim::DeviceSpec::gtx480()).collect(),
            cpu_workers,
            fault,
            ..ServerConfig::default()
        };
        let service = Service::start(config);
        let load = LoadGenConfig {
            tenants: 4,
            jobs_per_tenant: jobs,
            payload_bytes: payload,
            seed,
            ..LoadGenConfig::default()
        };
        let report = culzss_server::loadgen::run(&service, &load);
        let stats = service.shutdown();
        if !stats.reconciles() {
            return Err(format!("{label}: counters do not reconcile: {stats:?}"));
        }
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>12.2} {:>10.2} {:>9.2}x",
            label,
            stats.completed,
            stats.rejected(),
            stats.cpu_fallback_completions,
            report.mean_latency_seconds() * 1e3,
            report.wall_seconds,
            stats.batching_speedup(),
        );
    }
    Ok(())
}

/// Runs the engine × corpus benchmark suite and (optionally) the
/// regression gate. Thin front end over `culzss_bench::suite` /
/// `::report`; unlike the `bench` binary this path installs no counting
/// allocator, so the allocation columns read zero.
#[allow(clippy::too_many_arguments)]
fn bench(
    smoke: bool,
    size_mb: Option<usize>,
    reps: Option<usize>,
    seed: Option<u64>,
    out: Option<String>,
    baseline: Option<String>,
    check: bool,
    engines: Option<String>,
    corpora: Option<String>,
) -> Result<(), String> {
    use culzss_bench::report::{Report, Tolerances};
    use culzss_bench::suite::{
        run_checked_filtered, run_suite_filtered, GridFilter, SuiteCfg, NO_PROBE,
    };

    let mut cfg = if smoke { SuiteCfg::smoke() } else { SuiteCfg::full() };
    if let Some(mb) = size_mb {
        cfg.bytes = mb.max(1) << 20;
        cfg.smoke = false;
    }
    if let Some(r) = reps {
        cfg.reps = r.max(1);
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    let filter = GridFilter::parse(engines.as_deref(), corpora.as_deref())?;

    let mut cmd = String::from("culzss bench");
    if cfg.smoke {
        cmd.push_str(" --smoke");
    } else {
        cmd.push_str(&format!(" --size-mb {}", cfg.bytes >> 20));
    }
    cmd.push_str(&format!(" --reps {} --seed {:#x}", cfg.reps, cfg.seed));
    if let Some(e) = &engines {
        cmd.push_str(&format!(" --engines {e}"));
    }
    if let Some(c) = &corpora {
        cmd.push_str(&format!(" --corpora {c}"));
    }

    println!(
        "bench: {} KiB per corpus, {} rep(s), seed {:#x}{}",
        cfg.bytes / 1024,
        cfg.reps,
        cfg.seed,
        if cfg.smoke { " (smoke)" } else { "" }
    );
    // Load the baseline up front so a bad path fails before the run.
    let loaded = match &baseline {
        None => None,
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Some(Report::from_json(&text).map_err(|e| format!("{path}: {e}"))?)
        }
    };

    let tolerances = Tolerances::default();
    let (report, failures) = match (&loaded, check) {
        (Some(base), true) => {
            run_checked_filtered(&cfg, NO_PROBE, vec![cmd], base, &tolerances, &filter)
        }
        _ => (run_suite_filtered(&cfg, NO_PROBE, vec![cmd], &filter), Vec::new()),
    };

    let out_path = out.unwrap_or_else(|| {
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        format!("BENCH_{stamp}.json")
    });
    write(&out_path, report.to_json().as_bytes())?;
    println!("bench: wrote {out_path} ({} cells)", report.cells.len());

    if !check {
        return Ok(());
    }
    let baseline_path = baseline.expect("checked at parse time");
    let baseline = loaded.expect("loaded above when --check is set");
    if failures.is_empty() {
        println!("bench: gate PASS against {baseline_path} ({} cells)", baseline.cells.len());
        Ok(())
    } else {
        let mut msg = format!("bench: gate FAIL against {baseline_path} (after one retry pass):");
        for failure in &failures {
            msg.push_str(&format!("\n  {failure}"));
        }
        Err(msg)
    }
}

/// Runs both CULZSS kernels over corpus samples under the shared-memory
/// sanitizer; errors (nonzero exit) on any conflict or divergence.
fn sancheck(dataset: &str, bytes: usize, seed: u64) -> Result<(), String> {
    let corpora: Vec<culzss_datasets::Dataset> = if dataset == "all" {
        culzss_datasets::Dataset::ALL.to_vec()
    } else {
        vec![culzss_datasets::Dataset::from_slug(dataset)
            .ok_or(format!("unknown dataset `{dataset}`"))?]
    };
    let sim = culzss_gpusim::GpuSim::new(culzss_gpusim::DeviceSpec::gtx480());
    println!(
        "sancheck: {} corpus sample(s) x {bytes} B (seed {seed}) on simulated GTX 480",
        corpora.len()
    );
    let mut dirty = 0usize;
    for corpus in corpora {
        let input = corpus.generate(bytes, seed);
        let checks = culzss::sancheck::check_all(&sim, &input).map_err(|e| e.to_string())?;
        for check in checks {
            let verdict = if check.is_clean() { "clean" } else { "FINDINGS" };
            println!("\n[{}] {:?} kernel: {verdict}", corpus.slug(), check.version);
            println!("{}", check.report);
            if !check.is_clean() {
                dirty += 1;
            }
        }
        // Decode half of the sweep: both engines over streams from both
        // compression kernels.
        let checks = culzss::sancheck::check_decode_all(&sim, &input).map_err(|e| e.to_string())?;
        for check in checks {
            let verdict = if check.is_clean() { "clean" } else { "FINDINGS" };
            println!(
                "\n[{}] {:?} stream / {:?} decode: {verdict}",
                corpus.slug(),
                check.version,
                check.engine
            );
            println!("{}", check.report);
            if !check.is_clean() {
                dirty += 1;
            }
        }
    }
    if dirty > 0 {
        return Err(format!("sancheck: {dirty} kernel run(s) with findings"));
    }
    println!("\nsancheck passed: all kernels and decode engines race- and divergence-free");
    Ok(())
}

fn selftest() -> Result<(), String> {
    let dir = std::env::temp_dir().join("culzss_cli_selftest");
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let original = dir.join("in.bin");
    let packed = dir.join("out.clz");
    let restored = dir.join("back.bin");
    let as_str = |p: &std::path::Path| p.to_str().expect("utf8 temp path").to_string();

    let data = culzss_datasets::Dataset::KernelTarball.generate(256 * 1024, 4242);
    std::fs::write(&original, &data).map_err(|e| e.to_string())?;

    for codec in [Codec::V1, Codec::V2, Codec::V3, Codec::Lzss, Codec::Pthread, Codec::Bzip2] {
        compress(&as_str(&original), &as_str(&packed), codec, false)?;
        // Exercise checksum verification and magic detection; GPU
        // containers additionally round-trip through both decode engines.
        verify(&as_str(&packed))?;
        let engines: &[DecodeEngine] = if matches!(codec, Codec::V1 | Codec::V2 | Codec::V3) {
            &[DecodeEngine::Serial, DecodeEngine::WarpParallel]
        } else {
            &[DecodeEngine::Serial]
        };
        for &engine in engines {
            decompress(&as_str(&packed), &as_str(&restored), Codec::Auto, engine, false)?;
            let back = std::fs::read(&restored).map_err(|e| e.to_string())?;
            if back != data {
                return Err(format!("{codec:?}/{engine:?} roundtrip mismatch"));
            }
        }
        println!("{codec:?}: OK");
    }
    println!("selftest passed");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> String {
        let dir = std::env::temp_dir().join("culzss_cli_unit");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name).to_str().expect("utf8").to_string()
    }

    #[test]
    fn detect_identifies_all_magics() {
        let data = culzss_datasets::Dataset::CFiles.generate(32 * 1024, 1);
        let serial = culzss_lzss::serial::compress(&data, &LzssConfig::dipperstein()).unwrap();
        assert_eq!(detect(&serial).unwrap(), Codec::Lzss);

        let bz = culzss_bzip2::compress(&data).unwrap();
        assert_eq!(detect(&bz).unwrap(), Codec::Bzip2);

        let gpu = Culzss::new(Version::V2).with_workers(1).compress(&data).unwrap().0;
        assert_eq!(detect(&gpu).unwrap(), Codec::V2);

        let pthread = culzss_pthread::compress(&data, &LzssConfig::dipperstein(), 2).unwrap();
        assert_eq!(detect(&pthread).unwrap(), Codec::Pthread);

        assert!(detect(b"??").is_err());
        assert!(detect(b"ABCDEF").is_err());
    }

    #[test]
    fn compress_decompress_via_files() {
        let input = temp("unit_in.bin");
        let packed = temp("unit_out.clz");
        let back = temp("unit_back.bin");
        let data = culzss_datasets::Dataset::DeMap.generate(64 * 1024, 2);
        std::fs::write(&input, &data).unwrap();

        compress(&input, &packed, Codec::Lzss, false).unwrap();
        decompress(&packed, &back, Codec::Auto, DecodeEngine::Serial, false).unwrap();
        assert_eq!(std::fs::read(&back).unwrap(), data);

        // Info prints without error on each stream type.
        info(&packed).unwrap();
    }

    #[test]
    fn verify_and_salvage_handle_damage() {
        let input = temp("unit_dmg_in.bin");
        let packed = temp("unit_dmg.clz");
        let back = temp("unit_dmg_back.bin");
        let data = culzss_datasets::Dataset::CFiles.generate(24 * 1024, 11);
        std::fs::write(&input, &data).unwrap();
        compress(&input, &packed, Codec::V2, false).unwrap();

        // Pristine: verify passes, salvage is an identity decode.
        verify(&packed).unwrap();
        decompress(&packed, &back, Codec::Auto, DecodeEngine::Serial, true).unwrap();
        assert_eq!(std::fs::read(&back).unwrap(), data);

        // Flip a payload byte: verify fails, salvage still produces a
        // full-length output with the damaged chunk zero-filled.
        let mut stream = std::fs::read(&packed).unwrap();
        let at = stream.len() - 3;
        stream[at] ^= 0x20;
        std::fs::write(&packed, &stream).unwrap();
        assert!(verify(&packed).is_err());
        assert!(decompress(&packed, &back, Codec::Auto, DecodeEngine::Serial, false).is_err());
        decompress(&packed, &back, Codec::Auto, DecodeEngine::Serial, true).unwrap();
        let salvaged = std::fs::read(&back).unwrap();
        assert_eq!(salvaged.len(), data.len());
        assert_ne!(salvaged, data);
    }

    #[test]
    fn gen_writes_requested_bytes() {
        let out = temp("unit_gen.bin");
        gen("highly-compressible", 10_000, &out, 5).unwrap();
        assert_eq!(std::fs::read(&out).unwrap().len(), 10_000);
        gen("mixed", 5_000, &out, 5).unwrap();
        assert_eq!(std::fs::read(&out).unwrap().len(), 5_000);
        assert!(gen("nonsense", 10, &out, 5).is_err());
    }

    #[test]
    fn sancheck_passes_on_a_small_sample() {
        sancheck("de-map", 16 * 1024, 7).unwrap();
        assert!(sancheck("nonsense", 1024, 7).is_err());
    }

    #[test]
    fn profile_emits_a_validated_trace() {
        let input = temp("unit_profile_in.bin");
        let trace = temp("unit_profile.trace.json");
        let data = culzss_datasets::Dataset::CFiles.generate(64 * 1024, 9);
        std::fs::write(&input, &data).unwrap();

        profile(&input, Codec::V2, false, DecodeEngine::Serial, Some(trace.clone())).unwrap();
        let json = std::fs::read_to_string(&trace).unwrap();
        culzss_server::validate_chrome_trace(&json).unwrap();
        assert!(json.contains("\"request\""), "host spans missing");
        assert!(json.contains("compress#b0"), "modelled block spans missing");
    }

    #[test]
    fn profile_decompress_emits_a_validated_trace() {
        let input = temp("unit_profile_dec_in.bin");
        let trace = temp("unit_profile_dec.trace.json");
        let data = culzss_datasets::Dataset::CFiles.generate(64 * 1024, 9);
        std::fs::write(&input, &data).unwrap();

        for engine in [DecodeEngine::Serial, DecodeEngine::WarpParallel] {
            profile(&input, Codec::V1, true, engine, Some(trace.clone())).unwrap();
            let json = std::fs::read_to_string(&trace).unwrap();
            culzss_server::validate_chrome_trace(&json).unwrap();
            assert!(json.contains("\"request\""), "host spans missing ({engine:?})");
        }
    }

    #[test]
    fn dedup_round_trips_and_reports() {
        let input = temp("unit_dedup_in.bin");
        let data = culzss_datasets::Dataset::KernelTarball.generate(96 * 1024, 3);
        std::fs::write(&input, &data).unwrap();
        dedup(&input, 16).unwrap();
        assert!(dedup("/definitely/missing", 16).is_err());
    }

    #[test]
    fn missing_files_error_cleanly() {
        assert!(compress("/definitely/missing", &temp("x"), Codec::Lzss, false).is_err());
        assert!(info("/definitely/missing").is_err());
    }
}
