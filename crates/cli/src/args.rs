//! Hand-rolled argument parsing (no external dependencies).

use culzss::DecodeEngine;

/// Usage text printed on parse errors.
pub const USAGE: &str = "\
usage:
  culzss compress   <input> <output> [--codec v1|v2|v3|lzss|pthread|bzip2] [--report]
  culzss decompress <input> <output> [--codec auto|v1|v2|v3|lzss|pthread|bzip2]
                    [--engine serial|warp] [--salvage]
  culzss verify     <file>
  culzss info       <file>
  culzss gen        <dataset> <bytes> <output> [--seed N]
  culzss serve      [--devices N] [--cpu-workers N] [--tenants N] [--jobs N]
                    [--payload BYTES] [--queue-depth N] [--batch-jobs N]
                    [--tenant-rate BYTES/S] [--tenant-burst BYTES]
                    [--fail-first N] [--corrupt-every N] [--seed N]
                    [--trace-out PATH] [--cache-mb N]
                    [--chaos-seed N] [--device-fail SPEC[,SPEC...]]
  culzss profile    <input> [--codec v1|v2|v3] [--decompress]
                    [--engine serial|warp] [--out PATH]
  culzss dedup      <input> [--cache-mb N]
  culzss bench-serve [--jobs N] [--payload BYTES] [--seed N]
  culzss bench      [--smoke] [--size-mb N] [--reps N] [--seed N] [--out PATH]
                    [--engines a,b] [--corpora x,y] [--check --baseline PATH]
  culzss sancheck   [--dataset SLUG|all] [--bytes N] [--seed N]
  culzss selftest

codecs: v1/v2/v3 = CULZSS on the simulated GTX 480 (default v2; v3 is
        the fused GPU-selection engine, byte-identical streams to v2);
        lzss = serial CPU; pthread = threaded CPU; bzip2 = block sorting;
        auto (decompress) = detect from the stream header.
datasets: c-files de-map dictionary kernel-tarball highly-compressible mixed
verify: checks every checksum in a compressed file (per-chunk verdicts
       for containers) and exits nonzero on any damage.
decompress --salvage: best-effort decode of a damaged CULZSS container —
       intact chunks are recovered, damaged ones become zero-filled
       holes, and the damage report is printed.
decompress --engine: which simulated decode kernel CULZSS containers run
       through — serial (paper-faithful block decoder, default) or warp
       (two-pass warp-parallel decoder). Outputs are byte-identical.
serve: runs the multi-tenant service against a closed-loop load generator
       and prints the service stats; bench-serve sweeps pool shapes.
       --corrupt-every N flips a bit in every N-th compressed output to
       exercise the verify-and-quarantine path. --trace-out writes the
       run's Chrome trace (host spans + modelled GPU block spans).
       --cache-mb N fronts the compressors with an N-MiB content-
       addressed chunk cache (dedup); repeated payloads are served from
       cache and the stats gain hit/miss/bytes-saved counters.
       --tenant-rate N installs a per-tenant token bucket refilling at
       N payload bytes per second (0 = unlimited, the default);
       --tenant-burst sets its burst capacity in bytes. A tenant may
       borrow up to one extra burst against future refill before
       submissions are refused with a typed over-limit error.
       --device-fail installs a seeded chaos schedule on the named
       devices (comma-separated specs, launch indices are 0-based):
         D:dead@N      device D dies at its N-th launch (forever)
         D:dead@N+M    ...and heals after M failing launches
         D:flaky@P     each launch fails with probability P (0..1)
         D:slow@X      kernel time multiplied by X
         D:hang@N      launch N hangs until the watchdog kills it
       --chaos-seed drives the schedule's coin flips; the same seed
       replays the same faults and breaker transitions.
profile: compresses <input> through the service once and writes the
       request's Chrome trace (default <input>.trace.json) — load it in
       Perfetto or chrome://tracing; prints the stage breakdown.
       --decompress profiles the decode path instead: the input is
       compressed untimed, then a decompress job runs through the
       service with the selected --engine and the decode stages are
       printed and traced.
dedup: compresses <input> twice through a chunk-cache-backed compressor
       and prints the chunking layout, cold/warm hit rates, and the
       bytes served from cache; the output stays a byte-identical v2
       container either way.
sancheck: runs all three CULZSS kernels and both decode engines (serial
       and warp-parallel, over streams from every kernel) on corpus samples
       under the shared-memory sanitizer (racecheck) and prints the
       reports; exits nonzero on any conflict or barrier divergence.
bench: runs every engine over the five evaluation corpora and writes a
       machine-readable JSON report (default BENCH_<timestamp>.json);
       --check gates the run against a baseline report and exits
       nonzero on regression (see DESIGN.md §12 for the tolerances).";

/// Which compressor/decompressor to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// CULZSS V1 on the simulated device.
    V1,
    /// CULZSS V2 on the simulated device.
    V2,
    /// CULZSS V3 (fused GPU selection + compaction) on the simulated
    /// device.
    V3,
    /// Serial CPU LZSS (Dipperstein configuration).
    Lzss,
    /// Threaded CPU LZSS.
    Pthread,
    /// Block-sorting baseline.
    Bzip2,
    /// Detect from the stream magic (decompress only).
    Auto,
}

impl Codec {
    fn parse(s: &str) -> Result<Codec, String> {
        match s {
            "v1" => Ok(Codec::V1),
            "v2" => Ok(Codec::V2),
            "v3" => Ok(Codec::V3),
            "lzss" => Ok(Codec::Lzss),
            "pthread" => Ok(Codec::Pthread),
            "bzip2" => Ok(Codec::Bzip2),
            "auto" => Ok(Codec::Auto),
            other => Err(format!("unknown codec `{other}`")),
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Compress `input` into `output`.
    Compress {
        /// Input path.
        input: String,
        /// Output path.
        output: String,
        /// Codec choice.
        codec: Codec,
        /// Print the launch report (GPU codecs).
        report: bool,
    },
    /// Decompress `input` into `output`.
    Decompress {
        /// Input path.
        input: String,
        /// Output path.
        output: String,
        /// Codec choice (or Auto).
        codec: Codec,
        /// Decode kernel for CULZSS containers (serial or warp).
        engine: DecodeEngine,
        /// Best-effort decode: zero-fill damaged chunks instead of
        /// failing (CULZSS containers only).
        salvage: bool,
    },
    /// Check every checksum in a compressed file.
    Verify {
        /// Path to verify.
        path: String,
    },
    /// Describe a compressed file.
    Info {
        /// Path to inspect.
        path: String,
    },
    /// Generate a corpus.
    Gen {
        /// Dataset slug (or "mixed").
        dataset: String,
        /// Bytes to generate.
        bytes: usize,
        /// Output path.
        output: String,
        /// Generator seed.
        seed: u64,
    },
    /// Run the multi-tenant compression service under generated load.
    Serve {
        /// Simulated GPU devices in the pool.
        devices: usize,
        /// Dedicated CPU fallback workers.
        cpu_workers: usize,
        /// Concurrent load-generator tenants.
        tenants: usize,
        /// Jobs per tenant.
        jobs: usize,
        /// Payload bytes per job.
        payload: usize,
        /// Admission queue bound.
        queue_depth: usize,
        /// Max jobs coalesced per batch window.
        batch_jobs: usize,
        /// Per-tenant token-bucket refill rate in bytes/s (0 = unlimited).
        tenant_rate: u64,
        /// Per-tenant token-bucket burst capacity in bytes.
        tenant_burst: usize,
        /// Inject failures into the first N GPU attempts.
        fail_first: u64,
        /// Flip a bit in every N-th compressed output (0 = never).
        corrupt_every: u64,
        /// Load-generator seed.
        seed: u64,
        /// Write the run's Chrome trace here.
        trace_out: Option<String>,
        /// Chunk-cache byte budget in MiB (0 = no cache).
        cache_mb: usize,
        /// Seed for the chaos fault schedule.
        chaos_seed: u64,
        /// Comma-separated per-device fault specs
        /// (`D:dead@N[+M]`, `D:flaky@P`, `D:slow@X`, `D:hang@N`).
        device_fail: Option<String>,
    },
    /// Trace one compression (or decompression) request end to end.
    Profile {
        /// Input path.
        input: String,
        /// Codec choice (GPU codecs only).
        codec: Codec,
        /// Profile the decode path instead of the compress path.
        decompress: bool,
        /// Decode kernel when profiling the decode path.
        engine: DecodeEngine,
        /// Trace output path (default `<input>.trace.json`).
        out: Option<String>,
    },
    /// Report chunking and cache behaviour for one input.
    Dedup {
        /// Input path.
        input: String,
        /// Chunk-cache byte budget in MiB.
        cache_mb: usize,
    },
    /// Sweep service pool shapes under identical load.
    BenchServe {
        /// Jobs per tenant.
        jobs: usize,
        /// Payload bytes per job.
        payload: usize,
        /// Load-generator seed.
        seed: u64,
    },
    /// Run both CULZSS kernels under the shared-memory sanitizer.
    Sancheck {
        /// Dataset slug, or "all" for the five evaluation corpora.
        dataset: String,
        /// Sample bytes per corpus.
        bytes: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Run the engine × corpus benchmark suite (JSON report + gate).
    Bench {
        /// CI sizing (256 KiB per corpus).
        smoke: bool,
        /// Corpus size override in MiB.
        size_mb: Option<usize>,
        /// Repetition override.
        reps: Option<usize>,
        /// Seed override.
        seed: Option<u64>,
        /// Report path (default `BENCH_<timestamp>.json`).
        out: Option<String>,
        /// Baseline report to gate against.
        baseline: Option<String>,
        /// Gate against the baseline; exit nonzero on regression.
        check: bool,
        /// Comma-separated engine subset (None = all).
        engines: Option<String>,
        /// Comma-separated corpus subset (None = all).
        corpora: Option<String>,
    },
    /// Round-trip every codec on generated data.
    Selftest,
}

/// Parses `argv` (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let sub = it.next().ok_or("missing subcommand")?;
    let rest: Vec<&String> = it.collect();

    let positional = |n: usize| -> Result<Vec<&String>, String> {
        let pos: Vec<&String> = rest.iter().filter(|a| !a.starts_with("--")).copied().collect();
        if pos.len() < n {
            Err(format!("`{sub}` needs {n} positional argument(s)"))
        } else {
            Ok(pos)
        }
    };
    let flag_value = |name: &str| -> Result<Option<&String>, String> {
        let mut out = None;
        let mut iter = rest.iter();
        while let Some(a) = iter.next() {
            if a.as_str() == name {
                out = Some(*iter.next().ok_or(format!("{name} needs a value"))?);
            }
        }
        Ok(out)
    };
    let has_flag = |name: &str| rest.iter().any(|a| a.as_str() == name);
    let decode_engine = || -> Result<DecodeEngine, String> {
        match flag_value("--engine")? {
            Some(v) => DecodeEngine::parse(v)
                .ok_or_else(|| format!("unknown decode engine `{v}` (serial|warp)")),
            None => Ok(DecodeEngine::Serial),
        }
    };

    match sub.as_str() {
        "compress" => {
            let pos = positional(2)?;
            let codec = match flag_value("--codec")? {
                Some(v) => Codec::parse(v)?,
                None => Codec::V2,
            };
            if codec == Codec::Auto {
                return Err("`auto` is only valid for decompress".into());
            }
            Ok(Command::Compress {
                input: pos[0].clone(),
                output: pos[1].clone(),
                codec,
                report: has_flag("--report"),
            })
        }
        "decompress" => {
            let pos = positional(2)?;
            let codec = match flag_value("--codec")? {
                Some(v) => Codec::parse(v)?,
                None => Codec::Auto,
            };
            Ok(Command::Decompress {
                input: pos[0].clone(),
                output: pos[1].clone(),
                codec,
                engine: decode_engine()?,
                salvage: has_flag("--salvage"),
            })
        }
        "verify" => {
            let pos = positional(1)?;
            Ok(Command::Verify { path: pos[0].clone() })
        }
        "info" => {
            let pos = positional(1)?;
            Ok(Command::Info { path: pos[0].clone() })
        }
        "gen" => {
            let pos = positional(3)?;
            let bytes: usize =
                pos[1].parse().map_err(|_| format!("bad byte count `{}`", pos[1]))?;
            let seed: u64 = match flag_value("--seed")? {
                Some(v) => v.parse().map_err(|_| format!("bad seed `{v}`"))?,
                None => 2011,
            };
            Ok(Command::Gen { dataset: pos[0].clone(), bytes, output: pos[2].clone(), seed })
        }
        "serve" => {
            let num = |name: &str, default: usize| -> Result<usize, String> {
                match flag_value(name)? {
                    Some(v) => v.parse().map_err(|_| format!("bad value for {name}: `{v}`")),
                    None => Ok(default),
                }
            };
            Ok(Command::Serve {
                devices: num("--devices", 1)?.max(1),
                cpu_workers: num("--cpu-workers", 1)?,
                tenants: num("--tenants", 4)?.max(1),
                jobs: num("--jobs", 16)?,
                payload: num("--payload", 64 * 1024)?,
                queue_depth: num("--queue-depth", 128)?,
                batch_jobs: num("--batch-jobs", 8)?,
                tenant_rate: num("--tenant-rate", 0)? as u64,
                tenant_burst: num("--tenant-burst", 8 << 20)?,
                fail_first: num("--fail-first", 0)? as u64,
                corrupt_every: num("--corrupt-every", 0)? as u64,
                seed: num("--seed", 2011)? as u64,
                trace_out: flag_value("--trace-out")?.cloned(),
                cache_mb: num("--cache-mb", 0)?,
                chaos_seed: num("--chaos-seed", 0)? as u64,
                device_fail: flag_value("--device-fail")?.cloned(),
            })
        }
        "profile" => {
            let pos = positional(1)?;
            let codec = match flag_value("--codec")? {
                Some(v) => Codec::parse(v)?,
                None => Codec::V2,
            };
            if !matches!(codec, Codec::V1 | Codec::V2 | Codec::V3) {
                return Err("profile runs on the simulated device: --codec v1|v2|v3".into());
            }
            Ok(Command::Profile {
                input: pos[0].clone(),
                codec,
                decompress: has_flag("--decompress"),
                engine: decode_engine()?,
                out: flag_value("--out")?.cloned(),
            })
        }
        "dedup" => {
            let pos = positional(1)?;
            let cache_mb = match flag_value("--cache-mb")? {
                Some(v) => v.parse().map_err(|_| format!("bad value for --cache-mb: `{v}`"))?,
                None => 64,
            };
            Ok(Command::Dedup { input: pos[0].clone(), cache_mb })
        }
        "bench-serve" => {
            let num = |name: &str, default: usize| -> Result<usize, String> {
                match flag_value(name)? {
                    Some(v) => v.parse().map_err(|_| format!("bad value for {name}: `{v}`")),
                    None => Ok(default),
                }
            };
            Ok(Command::BenchServe {
                jobs: num("--jobs", 12)?,
                payload: num("--payload", 64 * 1024)?,
                seed: num("--seed", 2011)? as u64,
            })
        }
        "sancheck" => {
            let num = |name: &str, default: usize| -> Result<usize, String> {
                match flag_value(name)? {
                    Some(v) => v.parse().map_err(|_| format!("bad value for {name}: `{v}`")),
                    None => Ok(default),
                }
            };
            Ok(Command::Sancheck {
                dataset: flag_value("--dataset")?.cloned().unwrap_or_else(|| "all".into()),
                bytes: num("--bytes", 64 * 1024)?.max(1),
                seed: num("--seed", 2011)? as u64,
            })
        }
        "bench" => {
            let num = |name: &str| -> Result<Option<usize>, String> {
                match flag_value(name)? {
                    Some(v) => {
                        v.parse().map(Some).map_err(|_| format!("bad value for {name}: `{v}`"))
                    }
                    None => Ok(None),
                }
            };
            let check = has_flag("--check");
            let baseline = flag_value("--baseline")?.cloned();
            if check && baseline.is_none() {
                return Err("bench --check needs --baseline PATH".into());
            }
            Ok(Command::Bench {
                smoke: has_flag("--smoke"),
                size_mb: num("--size-mb")?,
                reps: num("--reps")?,
                seed: num("--seed")?.map(|s| s as u64),
                out: flag_value("--out")?.cloned(),
                baseline,
                check,
                engines: flag_value("--engines")?.cloned(),
                corpora: flag_value("--corpora")?.cloned(),
            })
        }
        "selftest" => Ok(Command::Selftest),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn compress_defaults() {
        let cmd = parse(&argv("compress a.bin b.clz")).unwrap();
        assert_eq!(
            cmd,
            Command::Compress {
                input: "a.bin".into(),
                output: "b.clz".into(),
                codec: Codec::V2,
                report: false
            }
        );
    }

    #[test]
    fn compress_with_flags() {
        let cmd = parse(&argv("compress a b --codec bzip2 --report")).unwrap();
        assert_eq!(
            cmd,
            Command::Compress {
                input: "a".into(),
                output: "b".into(),
                codec: Codec::Bzip2,
                report: true
            }
        );
    }

    #[test]
    fn decompress_defaults_to_auto() {
        let cmd = parse(&argv("decompress x y")).unwrap();
        assert_eq!(
            cmd,
            Command::Decompress {
                input: "x".into(),
                output: "y".into(),
                codec: Codec::Auto,
                engine: DecodeEngine::Serial,
                salvage: false
            }
        );
    }

    #[test]
    fn decompress_salvage_flag_parses() {
        match parse(&argv("decompress x y --salvage")).unwrap() {
            Command::Decompress { salvage: true, .. } => {}
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn decompress_engine_flag_parses() {
        for (flag, want) in [
            ("serial", DecodeEngine::Serial),
            ("warp", DecodeEngine::WarpParallel),
            ("warp-parallel", DecodeEngine::WarpParallel),
        ] {
            match parse(&argv(&format!("decompress x y --engine {flag}"))).unwrap() {
                Command::Decompress { engine, .. } => assert_eq!(engine, want, "{flag}"),
                other => panic!("unexpected parse: {other:?}"),
            }
        }
        assert!(parse(&argv("decompress x y --engine nope")).is_err());
    }

    #[test]
    fn verify_parses() {
        assert_eq!(parse(&argv("verify f.clz")).unwrap(), Command::Verify { path: "f.clz".into() });
        assert!(parse(&argv("verify")).is_err());
    }

    #[test]
    fn gen_parses_seed() {
        let cmd = parse(&argv("gen de-map 1024 out.bin --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Gen {
                dataset: "de-map".into(),
                bytes: 1024,
                output: "out.bin".into(),
                seed: 7
            }
        );
    }

    #[test]
    fn errors() {
        assert!(parse(&argv("")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("compress onlyone")).is_err());
        assert!(parse(&argv("compress a b --codec nope")).is_err());
        assert!(parse(&argv("compress a b --codec auto")).is_err());
        assert!(parse(&argv("gen de-map notanumber out")).is_err());
        assert!(parse(&argv("compress a b --codec")).is_err());
    }

    #[test]
    fn selftest_parses() {
        assert_eq!(parse(&argv("selftest")).unwrap(), Command::Selftest);
    }

    #[test]
    fn serve_defaults() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve {
                devices: 1,
                cpu_workers: 1,
                tenants: 4,
                jobs: 16,
                payload: 64 * 1024,
                queue_depth: 128,
                batch_jobs: 8,
                tenant_rate: 0,
                tenant_burst: 8 << 20,
                fail_first: 0,
                corrupt_every: 0,
                seed: 2011,
                trace_out: None,
                cache_mb: 0,
                chaos_seed: 0,
                device_fail: None,
            }
        );
    }

    #[test]
    fn serve_chaos_flags_parse() {
        match parse(&argv("serve --chaos-seed 42 --device-fail 0:dead@5+10,1:flaky@0.2")).unwrap() {
            Command::Serve { chaos_seed: 42, device_fail: Some(specs), .. } => {
                assert_eq!(specs, "0:dead@5+10,1:flaky@0.2");
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse(&argv("serve --chaos-seed nope")).is_err());
    }

    #[test]
    fn serve_cache_mb_parses() {
        match parse(&argv("serve --cache-mb 128")).unwrap() {
            Command::Serve { cache_mb: 128, .. } => {}
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse(&argv("serve --cache-mb nope")).is_err());
    }

    #[test]
    fn dedup_defaults_and_flags() {
        assert_eq!(
            parse(&argv("dedup data.bin")).unwrap(),
            Command::Dedup { input: "data.bin".into(), cache_mb: 64 }
        );
        assert_eq!(
            parse(&argv("dedup data.bin --cache-mb 16")).unwrap(),
            Command::Dedup { input: "data.bin".into(), cache_mb: 16 }
        );
        assert!(parse(&argv("dedup")).is_err());
        assert!(parse(&argv("dedup data.bin --cache-mb nope")).is_err());
    }

    #[test]
    fn serve_trace_out_parses() {
        match parse(&argv("serve --trace-out run.trace.json")).unwrap() {
            Command::Serve { trace_out: Some(path), .. } => assert_eq!(path, "run.trace.json"),
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn profile_defaults_and_flags() {
        assert_eq!(
            parse(&argv("profile data.bin")).unwrap(),
            Command::Profile {
                input: "data.bin".into(),
                codec: Codec::V2,
                decompress: false,
                engine: DecodeEngine::Serial,
                out: None
            }
        );
        assert_eq!(
            parse(&argv("profile data.bin --codec v1 --out t.json")).unwrap(),
            Command::Profile {
                input: "data.bin".into(),
                codec: Codec::V1,
                decompress: false,
                engine: DecodeEngine::Serial,
                out: Some("t.json".into())
            }
        );
        assert!(parse(&argv("profile")).is_err());
        assert!(parse(&argv("profile data.bin --codec bzip2")).is_err());
    }

    #[test]
    fn v3_codec_parses_everywhere() {
        match parse(&argv("compress a b --codec v3")).unwrap() {
            Command::Compress { codec: Codec::V3, .. } => {}
            other => panic!("unexpected parse: {other:?}"),
        }
        match parse(&argv("decompress a b --codec v3")).unwrap() {
            Command::Decompress { codec: Codec::V3, .. } => {}
            other => panic!("unexpected parse: {other:?}"),
        }
        match parse(&argv("profile data.bin --codec v3")).unwrap() {
            Command::Profile { codec: Codec::V3, .. } => {}
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn profile_decompress_flags_parse() {
        match parse(&argv("profile data.bin --decompress --engine warp")).unwrap() {
            Command::Profile { decompress: true, engine: DecodeEngine::WarpParallel, .. } => {}
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse(&argv("profile data.bin --decompress --engine nope")).is_err());
    }

    #[test]
    fn serve_flags_parse() {
        match parse(&argv(
            "serve --devices 2 --cpu-workers 0 --fail-first 3 --queue-depth 16 --corrupt-every 4",
        ))
        .unwrap()
        {
            Command::Serve {
                devices: 2,
                cpu_workers: 0,
                fail_first: 3,
                queue_depth: 16,
                corrupt_every: 4,
                ..
            } => {}
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse(&argv("serve --devices nope")).is_err());
    }

    #[test]
    fn serve_tenant_rate_flags_parse() {
        match parse(&argv("serve --tenant-rate 65536 --tenant-burst 4096")).unwrap() {
            Command::Serve { tenant_rate: 65536, tenant_burst: 4096, .. } => {}
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse(&argv("serve --tenant-rate nope")).is_err());
        assert!(parse(&argv("serve --tenant-burst nope")).is_err());
    }

    #[test]
    fn sancheck_defaults_and_flags() {
        assert_eq!(
            parse(&argv("sancheck")).unwrap(),
            Command::Sancheck { dataset: "all".into(), bytes: 64 * 1024, seed: 2011 }
        );
        assert_eq!(
            parse(&argv("sancheck --dataset de-map --bytes 4096 --seed 9")).unwrap(),
            Command::Sancheck { dataset: "de-map".into(), bytes: 4096, seed: 9 }
        );
        assert!(parse(&argv("sancheck --bytes nope")).is_err());
    }

    #[test]
    fn bench_defaults_and_flags() {
        assert_eq!(
            parse(&argv("bench")).unwrap(),
            Command::Bench {
                smoke: false,
                size_mb: None,
                reps: None,
                seed: None,
                out: None,
                baseline: None,
                check: false,
                engines: None,
                corpora: None,
            }
        );
        assert_eq!(
            parse(&argv("bench --smoke --check --baseline BENCH_BASELINE.json --out r.json"))
                .unwrap(),
            Command::Bench {
                smoke: true,
                size_mb: None,
                reps: None,
                seed: None,
                out: Some("r.json".into()),
                baseline: Some("BENCH_BASELINE.json".into()),
                check: true,
                engines: None,
                corpora: None,
            }
        );
        // --check without a baseline is a usage error.
        assert!(parse(&argv("bench --check")).is_err());
        assert!(parse(&argv("bench --size-mb nope")).is_err());
    }

    #[test]
    fn bench_subset_filters_parse() {
        match parse(&argv(
            "bench --smoke --engines dedup-cold,dedup-warm --corpora incremental-edits",
        ))
        .unwrap()
        {
            Command::Bench { engines: Some(e), corpora: Some(c), .. } => {
                assert_eq!(e, "dedup-cold,dedup-warm");
                assert_eq!(c, "incremental-edits");
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn bench_serve_parses() {
        assert_eq!(
            parse(&argv("bench-serve --jobs 6 --payload 4096")).unwrap(),
            Command::BenchServe { jobs: 6, payload: 4096, seed: 2011 }
        );
    }
}
