//! `culzss` — the standalone compression program of the paper
//! ("a standalone program which is accepting files as input and writing
//! the compressed file back to the output file"), extended with every
//! codec in the workspace.
//!
//! ```text
//! culzss compress   <input> <output> [--codec v1|v2|lzss|pthread|bzip2] [--report]
//! culzss decompress <input> <output> [--codec auto|v1|v2|lzss|pthread|bzip2]
//! culzss info       <file>
//! culzss gen        <dataset> <bytes> <output> [--seed N]
//! culzss selftest
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
